"""Bayesian Personalised Ranking with WARP sampling (paper Section 4).

Matrix factorisation for implicit feedback: user factors ``V`` (U × L) and
item factors ``P`` (L × B) are learned so that every read book outranks the
unread ones (Equation 3 of the paper, after Rendle et al. 2012). Training
follows the paper's choice of the WARP variant (Weston et al. 2011): for
each positive (u, i), negatives are drawn until one *violates* the ranking
(scores within a unit margin of the positive), and the update magnitude
decreases with the number of draws needed — a violator found immediately
implies the positive is badly ranked and earns a large step.

The update weight uses the WARP rank estimate ``rank ≈ (B - 1) / trials``
normalised to (0, 1] by ``log1p(rank) / log1p(B - 1)``, which keeps the
paper's best learning rate (0.2) numerically stable.

A plain-BPR alternative (uniform negative sampling with the sigmoid
gradient of Equation 3) is available via ``sampler="uniform"`` and is used
by the sampler ablation bench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, NotFittedError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.rng import derive_rng

#: Fixed buckets for the per-epoch / per-batch training-time histograms.
_TRAIN_TIME_BUCKETS = (
    0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)

SAMPLERS = ("warp", "uniform")


@dataclass(frozen=True)
class BPRConfig:
    """Hyper-parameters of the BPR recommender.

    Defaults are this implementation's grid-search winners (see the
    ``gridsearch`` experiment): 20 latent factors — matching the paper's
    winner — and a 0.05 learning rate. The paper reports 0.2, but its
    LightFM-style trainer uses adagrad step scaling; on plain SGD the
    equivalent optimum lands at a smaller nominal rate.
    """

    n_factors: int = 20
    learning_rate: float = 0.05
    epochs: int = 30
    batch_size: int = 2048
    regularization: float = 0.002
    """The paper's lambda_V = lambda_P (applied to both factor matrices)."""
    sampler: str = "warp"
    max_trials: int = 20
    """WARP: negative draws per positive before giving up on the update."""
    margin: float = 1.0
    """WARP hinge margin: a negative within this of the positive violates."""
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_factors < 1:
            raise ConfigurationError(f"n_factors must be >= 1, got {self.n_factors}")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.regularization < 0:
            raise ConfigurationError("regularization must be non-negative")
        if self.sampler not in SAMPLERS:
            raise ConfigurationError(
                f"sampler must be one of {SAMPLERS}, got {self.sampler!r}"
            )
        if self.max_trials < 1:
            raise ConfigurationError(f"max_trials must be >= 1, got {self.max_trials}")


@dataclass
class EpochStats:
    """Diagnostics recorded after each training epoch."""

    epoch: int
    mean_violation_trials: float
    updated_fraction: float
    seconds: float


class BPR(Recommender):
    """The collaborative-filtering recommender of the paper.

    Observability hooks (all optional, all inert by default — fitting with
    none of them set is bit-identical to the uninstrumented model because
    the tracer/metrics draw no randomness from the training stream):

    - ``callbacks``: called with each epoch's :class:`EpochStats` as it
      completes (progress bars, early-stopping monitors, ...);
    - ``tracer``: emits one ``bpr.fit`` span wrapping per-epoch
      ``bpr.epoch`` child spans with trial/update diagnostics as attrs;
    - ``metrics``: gauges ``bpr.updated_fraction``/``bpr.mean_violation_trials``,
      an epoch counter, and ``bpr.epoch_seconds``/``bpr.batch_seconds``
      histograms.
    """

    exclude_seen = True

    def __init__(
        self,
        config: BPRConfig | None = None,
        callbacks: "Sequence[Callable[[EpochStats], None]] | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__()
        self.config = config or BPRConfig()
        self.callbacks = tuple(callbacks or ())
        self.tracer = tracer
        self.metrics = metrics
        self._user_factors: np.ndarray | None = None
        self._item_factors: np.ndarray | None = None
        self.history: list[EpochStats] = []

    @property
    def name(self) -> str:
        return "BPR"

    @property
    def user_factors(self) -> np.ndarray:
        """The fitted ``V`` matrix (n_users × L)."""
        if self._user_factors is None:
            raise NotFittedError(self.name)
        return self._user_factors

    @property
    def item_factors(self) -> np.ndarray:
        """The fitted ``P^T`` matrix (n_items × L)."""
        if self._item_factors is None:
            raise NotFittedError(self.name)
        return self._item_factors

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "bpr", "sgd")
        n_users, n_items = train.n_users, train.n_items
        if n_items < 2:
            raise ConfigurationError("BPR needs at least two items")
        scale = 1.0 / np.sqrt(cfg.n_factors)
        V = rng.normal(0.0, scale, size=(n_users, cfg.n_factors))
        P = rng.normal(0.0, scale, size=(n_items, cfg.n_factors))

        pos_users, pos_items = train.positive_pairs()
        seen_keys = train.interaction_keys()
        self.history = []

        metrics = self.metrics
        batch_histogram = (
            metrics.histogram("bpr.batch_seconds", buckets=_TRAIN_TIME_BUCKETS)
            if metrics is not None
            else None
        )
        with start_span(
            self.tracer, "bpr.fit",
            n_users=n_users, n_items=n_items, n_pairs=len(pos_users),
            epochs=cfg.epochs, sampler=cfg.sampler,
        ):
            for epoch in range(cfg.epochs):
                started = time.perf_counter()
                with start_span(self.tracer, "bpr.epoch", epoch=epoch) as span:
                    order = rng.permutation(len(pos_users))
                    trial_total, updated_total = 0.0, 0
                    for start in range(0, len(order), cfg.batch_size):
                        batch = order[start:start + cfg.batch_size]
                        batch_started = (
                            time.perf_counter()
                            if batch_histogram is not None
                            else 0.0
                        )
                        stats = self._train_batch(
                            V, P, pos_users[batch], pos_items[batch],
                            seen_keys, n_items, rng,
                        )
                        if batch_histogram is not None:
                            batch_histogram.observe(
                                time.perf_counter() - batch_started
                            )
                        trial_total += stats[0]
                        updated_total += stats[1]
                    n_pairs = len(order)
                    epoch_stats = EpochStats(
                        epoch=epoch,
                        mean_violation_trials=(
                            trial_total / max(updated_total, 1)
                        ),
                        updated_fraction=updated_total / max(n_pairs, 1),
                        seconds=time.perf_counter() - started,
                    )
                    span.set_attrs(
                        mean_violation_trials=epoch_stats.mean_violation_trials,
                        updated_fraction=epoch_stats.updated_fraction,
                    )
                self.history.append(epoch_stats)
                if metrics is not None:
                    metrics.counter("bpr.epochs").inc()
                    metrics.gauge("bpr.updated_fraction").set(
                        epoch_stats.updated_fraction
                    )
                    metrics.gauge("bpr.mean_violation_trials").set(
                        epoch_stats.mean_violation_trials
                    )
                    metrics.histogram(
                        "bpr.epoch_seconds", buckets=_TRAIN_TIME_BUCKETS
                    ).observe(epoch_stats.seconds)
                for callback in self.callbacks:
                    callback(epoch_stats)
        self._user_factors = V
        self._item_factors = P

    def _train_batch(
        self,
        V: np.ndarray,
        P: np.ndarray,
        users: np.ndarray,
        items: np.ndarray,
        seen_keys: np.ndarray,
        n_items: int,
        rng: np.random.Generator,
    ) -> tuple[float, int]:
        """One SGD step; returns (sum of trials, number of updated pairs)."""
        cfg = self.config
        batch = len(users)
        Vu = V[users]
        pos_scores = np.einsum("ij,ij->i", Vu, P[items])

        if cfg.sampler == "uniform":
            negatives = self._sample_unseen(users, seen_keys, n_items, rng)
            neg_scores = np.einsum("ij,ij->i", Vu, P[negatives])
            x = pos_scores - neg_scores
            weight = 1.0 / (1.0 + np.exp(x))  # sigma(-x), Eq. 3 gradient
            self._apply_updates(V, P, users, items, negatives, weight)
            return float(batch), batch

        # WARP: keep drawing negatives until one violates the margin.
        negatives = np.zeros(batch, dtype=np.int64)
        trials = np.zeros(batch, dtype=np.int64)
        unresolved = np.ones(batch, dtype=bool)
        for trial in range(1, cfg.max_trials + 1):
            active = np.flatnonzero(unresolved)
            if active.size == 0:
                break
            candidates = self._sample_unseen(
                users[active], seen_keys, n_items, rng
            )
            cand_scores = np.einsum("ij,ij->i", Vu[active], P[candidates])
            violating = cand_scores > pos_scores[active] - cfg.margin
            hit = active[violating]
            negatives[hit] = candidates[violating]
            trials[hit] = trial
            unresolved[hit] = False
        resolved = trials > 0
        if not resolved.any():
            return 0.0, 0
        # Float division: floor division quantises the estimate for small
        # catalogues and collapses to 0 (rescued only by the maximum) as
        # soon as trials exceeds n_items - 1.
        rank_estimate = np.maximum((n_items - 1) / trials[resolved], 1.0)
        weight = np.log1p(rank_estimate) / np.log1p(n_items - 1)
        self._apply_updates(
            V, P,
            users[resolved], items[resolved], negatives[resolved], weight,
        )
        return float(trials[resolved].sum()), int(resolved.sum())

    def _sample_unseen(
        self,
        users: np.ndarray,
        seen_keys: np.ndarray,
        n_items: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw one candidate negative per user, rejecting read books.

        A handful of rejection rounds suffice because each user has read a
        small fraction of the catalogue; any survivor collisions keep their
        last draw (a rare, unbiased no-op update).
        """
        candidates = rng.integers(0, n_items, size=len(users), dtype=np.int64)
        for _ in range(4):
            keys = users * np.int64(n_items) + candidates
            positions = np.searchsorted(seen_keys, keys)
            positions = np.minimum(positions, len(seen_keys) - 1)
            seen = seen_keys[positions] == keys
            if not seen.any():
                break
            candidates[seen] = rng.integers(
                0, n_items, size=int(seen.sum()), dtype=np.int64
            )
        return candidates

    def _apply_updates(
        self,
        V: np.ndarray,
        P: np.ndarray,
        users: np.ndarray,
        items: np.ndarray,
        negatives: np.ndarray,
        weight: np.ndarray,
    ) -> None:
        cfg = self.config
        lr = cfg.learning_rate
        reg = cfg.regularization
        Vu = V[users]
        diff = P[items] - P[negatives]
        w = weight[:, None]
        np.add.at(V, users, lr * (w * diff - reg * Vu))
        np.add.at(P, items, lr * (w * Vu - reg * P[items]))
        np.add.at(P, negatives, lr * (-w * Vu - reg * P[negatives]))

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        return self.user_factors[np.asarray(user_indices, dtype=np.int64)] @ (
            self.item_factors.T
        )

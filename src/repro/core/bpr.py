"""Bayesian Personalised Ranking with WARP sampling (paper Section 4).

Matrix factorisation for implicit feedback: user factors ``V`` (U × L) and
item factors ``P`` (L × B) are learned so that every read book outranks the
unread ones (Equation 3 of the paper, after Rendle et al. 2012). Training
follows the paper's choice of the WARP variant (Weston et al. 2011): for
each positive (u, i), negatives are drawn until one *violates* the ranking
(scores within a unit margin of the positive), and the update magnitude
decreases with the number of draws needed — a violator found immediately
implies the positive is badly ranked and earns a large step.

The update weight uses the WARP rank estimate ``rank ≈ (B - 1) / trials``
normalised to (0, 1] by ``log1p(rank) / log1p(B - 1)``, which keeps the
paper's best learning rate (0.2) numerically stable.

A plain-BPR alternative (uniform negative sampling with the sigmoid
gradient of Equation 3) is available via ``sampler="uniform"`` and is used
by the sampler ablation bench.

Online-learning extensions (the model as a living artefact):

- **warm start** — ``fit(train, warm_start=previous_model)`` seeds the
  factor matrices from an earlier fitted model through the expanding
  :class:`~repro.core.interactions.Indexer`\\ s: users/items present in
  both catalogues continue training from their learned rows, brand-new
  ones keep their fresh random initialisation. The catalogue can grow,
  shrink, and reorder between fits — rows are matched by external id,
  never by index.
- **fold-in** — :meth:`BPR.fold_in` solves a single new user's factor
  vector against the *frozen* item factors (a ridge least-squares fit to
  their read items), and :func:`fold_in_users` grafts a batch of such
  users into an expanded model + interaction matrix so they get
  personalised, seen-item-masked lists without any retraining.

Training runs on one of the tiered kernels in
:mod:`repro.core.bpr_kernel` (``config.kernel``): the bit-exact float64
``"reference"`` loop, or the ``"fast"`` float32 kernel with pre-drawn
negative sampling and segment-sum updates; ``config.workers > 1``
additionally shards each epoch HogWild-style across worker processes
over shared-memory factors. The contract each tier honours is tabulated
in ``docs/determinism.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.base import Recommender
from repro.core.bpr_kernel import (
    BATCH_KERNELS,
    KERNELS,
    fork_sharing_available,
    hogwild_epoch,
    hogwild_pool,
    shared_empty,
)
from repro.core.interactions import Indexer, InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, NotFittedError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.parallel.pool import resolve_n_jobs
from repro.rng import derive_rng

#: Fixed buckets for the per-epoch / per-batch training-time histograms.
_TRAIN_TIME_BUCKETS = (
    0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)

SAMPLERS = ("warp", "uniform")


@dataclass(frozen=True)
class BPRConfig:
    """Hyper-parameters of the BPR recommender.

    Defaults are this implementation's grid-search winners (see the
    ``gridsearch`` experiment): 20 latent factors — matching the paper's
    winner — and a 0.05 learning rate. The paper reports 0.2, but its
    LightFM-style trainer uses adagrad step scaling; on plain SGD the
    equivalent optimum lands at a smaller nominal rate.
    """

    n_factors: int = 20
    learning_rate: float = 0.05
    epochs: int = 30
    batch_size: int = 2048
    regularization: float = 0.002
    """The paper's lambda_V = lambda_P (applied to both factor matrices)."""
    sampler: str = "warp"
    max_trials: int = 20
    """WARP: negative draws per positive before giving up on the update."""
    margin: float = 1.0
    """WARP hinge margin: a negative within this of the positive violates."""
    seed: int | None = None
    kernel: str = "reference"
    """Training kernel tier: ``"reference"`` (float64, bit-exact with the
    historical trainer) or ``"fast"`` (float32, pre-drawn sampling,
    segment-sum updates; deterministic per seed but not bit-comparable —
    see ``docs/determinism.md``)."""
    workers: int = 1
    """Worker processes for HogWild training (``-1`` = all CPUs). Values
    above 1 require ``kernel="fast"`` and relax the determinism contract
    to converges-to-the-same-KPIs; on platforms without the ``fork``
    start method training transparently stays in-process."""

    def __post_init__(self) -> None:
        if self.n_factors < 1:
            raise ConfigurationError(f"n_factors must be >= 1, got {self.n_factors}")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.regularization < 0:
            raise ConfigurationError("regularization must be non-negative")
        if self.sampler not in SAMPLERS:
            raise ConfigurationError(
                f"sampler must be one of {SAMPLERS}, got {self.sampler!r}"
            )
        if self.max_trials < 1:
            raise ConfigurationError(f"max_trials must be >= 1, got {self.max_trials}")
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.workers != -1 and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1 or -1 (all CPUs), got {self.workers}"
            )
        if self.workers != 1 and self.kernel != "fast":
            raise ConfigurationError(
                "multi-worker (HogWild) training requires kernel='fast'; "
                "the reference kernel is single-worker by its bit-exactness "
                "contract"
            )


@dataclass
class EpochStats:
    """Diagnostics recorded after each training epoch."""

    epoch: int
    mean_violation_trials: float
    updated_fraction: float
    seconds: float
    samples_per_second: float = 0.0
    """Positive pairs processed divided by the epoch's wall-clock seconds
    — the one shared definition of training throughput used by the
    ``bpr.samples_per_second`` gauge and ``python -m repro bench-train``."""


class BPR(Recommender):
    """The collaborative-filtering recommender of the paper.

    Observability hooks (all optional, all inert by default — fitting with
    none of them set is bit-identical to the uninstrumented model because
    the tracer/metrics draw no randomness from the training stream):

    - ``callbacks``: called with each epoch's :class:`EpochStats` as it
      completes (progress bars, early-stopping monitors, ...);
    - ``tracer``: emits one ``bpr.fit`` span wrapping per-epoch
      ``bpr.epoch`` child spans with trial/update diagnostics as attrs;
    - ``metrics``: gauges ``bpr.updated_fraction``/``bpr.mean_violation_trials``,
      an epoch counter, and ``bpr.epoch_seconds``/``bpr.batch_seconds``
      histograms.
    """

    exclude_seen = True

    def __init__(
        self,
        config: BPRConfig | None = None,
        callbacks: "Sequence[Callable[[EpochStats], None]] | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__()
        self.config = config or BPRConfig()
        self.callbacks = tuple(callbacks or ())
        self.tracer = tracer
        self.metrics = metrics
        self._user_factors: np.ndarray | None = None
        self._item_factors: np.ndarray | None = None
        self._warm_start: "BPR | None" = None
        self.history: list[EpochStats] = []

    @property
    def name(self) -> str:
        return "BPR"

    @property
    def user_factors(self) -> np.ndarray:
        """The fitted ``V`` matrix (n_users × L)."""
        if self._user_factors is None:
            raise NotFittedError(self.name)
        return self._user_factors

    @property
    def item_factors(self) -> np.ndarray:
        """The fitted ``P^T`` matrix (n_items × L)."""
        if self._item_factors is None:
            raise NotFittedError(self.name)
        return self._item_factors

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def fit(
        self,
        train: InteractionMatrix,
        dataset: MergedDataset | None = None,
        warm_start: "BPR | None" = None,
    ) -> "BPR":
        """Fit on the training interactions, optionally warm-started.

        ``warm_start`` (a previously fitted BPR with the same
        ``n_factors``) seeds the factor matrices: rows for users/items
        shared with the earlier catalogue are copied from the old model
        before SGD begins, rows for new users/items keep the fresh seeded
        initialisation. The RNG stream is identical to a cold fit —
        warm-starting only overwrites initial values, so the run stays a
        pure function of ``(seed, train, warm_start factors)`` (see
        ``docs/determinism.md``).
        """
        if warm_start is not None:
            if not warm_start.is_fitted:
                raise NotFittedError(warm_start.name)
            if warm_start.config.n_factors != self.config.n_factors:
                raise ConfigurationError(
                    f"warm-start model has {warm_start.config.n_factors} "
                    f"factors, this config wants {self.config.n_factors}; "
                    "factor dimensionality cannot change across a warm start"
                )
        self._warm_start = warm_start
        try:
            super().fit(train, dataset)
        finally:
            self._warm_start = None
        return self

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "bpr", "sgd")
        n_users, n_items = train.n_users, train.n_items
        if n_items < 2:
            raise ConfigurationError("BPR needs at least two items")
        scale = 1.0 / np.sqrt(cfg.n_factors)
        # Both tiers burn the identical normal draws, so switching kernels
        # never perturbs the downstream RNG stream; the fast tier merely
        # rounds the same initialisation to float32.
        V = rng.normal(0.0, scale, size=(n_users, cfg.n_factors))
        P = rng.normal(0.0, scale, size=(n_items, cfg.n_factors))
        if cfg.kernel == "fast":
            V = V.astype(np.float32)
            P = P.astype(np.float32)
        if self._warm_start is not None:
            _seed_from_model(self._warm_start, train, V, P)

        pos_users, pos_items = train.positive_pairs()
        seen_keys = train.interaction_keys()
        self.history = []

        n_workers = resolve_n_jobs(cfg.workers)
        hogwild = (
            cfg.kernel == "fast"
            and n_workers > 1
            and fork_sharing_available()
        )
        pool = None
        if hogwild:
            shared_V = shared_empty(V.shape, np.float32)
            shared_V[:] = V
            shared_P = shared_empty(P.shape, np.float32)
            shared_P[:] = P
            V, P = shared_V, shared_P
            pool = hogwild_pool(
                V, P, pos_users, pos_items, seen_keys, n_items, cfg, n_workers
            )
        try:
            self._run_epochs(
                V, P, pos_users, pos_items, seen_keys, n_items, rng, pool,
                n_workers,
            )
        finally:
            if pool is not None:
                pool.close()
        # Copy shared-buffer factors into plain arrays so the fitted model
        # holds no reference to the (now worker-free) shared mappings.
        self._user_factors = np.array(V) if hogwild else V
        self._item_factors = np.array(P) if hogwild else P

    def _run_epochs(
        self,
        V: np.ndarray,
        P: np.ndarray,
        pos_users: np.ndarray,
        pos_items: np.ndarray,
        seen_keys: np.ndarray,
        n_items: int,
        rng: np.random.Generator,
        pool,
        n_workers: int,
    ) -> None:
        """The epoch loop, common to every kernel tier.

        ``pool`` is the HogWild worker pool, or ``None`` for in-process
        training with the configured batch kernel.
        """
        cfg = self.config
        batch_kernel = BATCH_KERNELS[cfg.kernel]
        metrics = self.metrics
        batch_histogram = (
            metrics.histogram("bpr.batch_seconds", buckets=_TRAIN_TIME_BUCKETS)
            if metrics is not None
            else None
        )
        with start_span(
            self.tracer, "bpr.fit",
            n_users=V.shape[0], n_items=n_items, n_pairs=len(pos_users),
            epochs=cfg.epochs, sampler=cfg.sampler, kernel=cfg.kernel,
            workers=(n_workers if pool is not None else 1),
        ):
            for epoch in range(cfg.epochs):
                started = time.perf_counter()
                with start_span(self.tracer, "bpr.epoch", epoch=epoch) as span:
                    order = rng.permutation(len(pos_users))
                    if pool is not None:
                        trial_total, updated_total = hogwild_epoch(
                            pool, order, epoch, cfg.seed, n_workers
                        )
                    else:
                        trial_total, updated_total = 0.0, 0
                        for start in range(0, len(order), cfg.batch_size):
                            batch = order[start:start + cfg.batch_size]
                            batch_started = (
                                time.perf_counter()
                                if batch_histogram is not None
                                else 0.0
                            )
                            stats = batch_kernel(
                                V, P, pos_users[batch], pos_items[batch],
                                seen_keys, n_items, rng, cfg,
                            )
                            if batch_histogram is not None:
                                batch_histogram.observe(
                                    time.perf_counter() - batch_started
                                )
                            trial_total += stats[0]
                            updated_total += stats[1]
                    n_pairs = len(order)
                    seconds = time.perf_counter() - started
                    epoch_stats = EpochStats(
                        epoch=epoch,
                        mean_violation_trials=(
                            trial_total / max(updated_total, 1)
                        ),
                        updated_fraction=updated_total / max(n_pairs, 1),
                        seconds=seconds,
                        samples_per_second=(
                            n_pairs / seconds if seconds > 0 else 0.0
                        ),
                    )
                    span.set_attrs(
                        mean_violation_trials=epoch_stats.mean_violation_trials,
                        updated_fraction=epoch_stats.updated_fraction,
                        samples_per_second=epoch_stats.samples_per_second,
                    )
                self.history.append(epoch_stats)
                if metrics is not None:
                    metrics.counter("bpr.epochs").inc()
                    metrics.gauge("bpr.updated_fraction").set(
                        epoch_stats.updated_fraction
                    )
                    metrics.gauge("bpr.mean_violation_trials").set(
                        epoch_stats.mean_violation_trials
                    )
                    metrics.gauge("bpr.samples_per_second").set(
                        epoch_stats.samples_per_second
                    )
                    metrics.histogram(
                        "bpr.epoch_seconds", buckets=_TRAIN_TIME_BUCKETS
                    ).observe(epoch_stats.seconds)
                for callback in self.callbacks:
                    callback(epoch_stats)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        return self.user_factors[np.asarray(user_indices, dtype=np.int64)] @ (
            self.item_factors.T
        )

    # ------------------------------------------------------------------
    # fold-in: new users without a retrain
    # ------------------------------------------------------------------

    def fold_in(
        self,
        item_indices: Sequence[int] | np.ndarray,
        regularization: float | None = None,
    ) -> np.ndarray:
        """Solve one new user's factor vector against frozen item factors.

        Ridge least squares on the user's read items: minimise
        ``sum_i (1 - x · p_i)^2 + lambda * |N_u| * |x|^2`` over the items
        ``i`` the user has read, with the item factors ``p_i`` held fixed.
        The closed form is one ``(L × L)`` solve, so a brand-new user gets
        a personalised factor vector in microseconds instead of an epoch
        of SGD. Deterministic: a pure function of the item factors and the
        item set (no randomness).

        Args:
            item_indices: matrix indices of the items the user read (at
                least one, all within the fitted catalogue).
            regularization: ridge strength per read item; defaults to the
                training ``config.regularization``.
        """
        P = self.item_factors
        idx = np.asarray(item_indices, dtype=np.int64)
        if idx.ndim != 1 or len(idx) == 0:
            raise ConfigurationError(
                "fold_in needs a non-empty 1-D array of item indices"
            )
        if len(idx) and (int(idx.min()) < 0 or int(idx.max()) >= len(P)):
            raise ConfigurationError(
                f"fold_in item indices must lie in [0, {len(P)}), got "
                f"[{int(idx.min())}, {int(idx.max())}]"
            )
        lam = (
            self.config.regularization if regularization is None
            else regularization
        )
        if lam < 0:
            raise ConfigurationError("regularization must be non-negative")
        sub = P[idx].astype(np.float64)
        n_factors = sub.shape[1]
        # A tiny absolute floor keeps the system well-posed even at
        # lambda = 0 with rank-deficient histories.
        ridge = lam * len(idx) + 1e-9
        gram = sub.T @ sub + ridge * np.eye(n_factors)
        rhs = sub.sum(axis=0)
        solution = np.linalg.solve(gram, rhs)
        return solution.astype(self.user_factors.dtype, copy=False)


def _seed_from_model(
    warm: BPR, train: InteractionMatrix, V: np.ndarray, P: np.ndarray
) -> None:
    """Overwrite factor rows shared with an earlier model's catalogue.

    Matching is by external id through the old and new indexers, so the
    catalogue may grow, shrink, or reorder between fits; rows for ids the
    old model never saw keep their fresh initialisation in ``V``/``P``.
    """
    old_train = warm.train
    for old_indexer, new_indexer, old_factors, target in (
        (old_train.users, train.users, warm.user_factors, V),
        (old_train.items, train.items, warm.item_factors, P),
    ):
        shared = [value for value in new_indexer.ids if value in old_indexer]
        if not shared:
            continue
        new_rows = new_indexer.indices_of(shared)
        old_rows = old_indexer.indices_of(shared)
        target[new_rows] = old_factors[old_rows].astype(
            target.dtype, copy=False
        )


def fold_in_users(
    model: BPR,
    train: InteractionMatrix,
    new_user_items: "dict[str, Sequence[int]]",
    regularization: float | None = None,
) -> tuple[BPR, InteractionMatrix]:
    """Graft brand-new users into a fitted model without retraining.

    Each new user's factor vector is solved with :meth:`BPR.fold_in`
    against the frozen item factors; the returned ``(model, train)`` pair
    has an expanded user :class:`~repro.core.interactions.Indexer`,
    factor rows for every old user byte-identical to the input model, and
    interaction rows for the new users so seen-item masking applies to
    their histories. Item factors and the item indexer are untouched.

    Args:
        model: a fitted :class:`BPR`.
        train: the interaction matrix the model was fitted on.
        new_user_items: new user id → external book ids they have read.
            Ids already in the catalogue, unknown books, or empty
            histories raise :class:`~repro.errors.ConfigurationError`.
        regularization: forwarded to :meth:`BPR.fold_in`.

    Returns:
        ``(folded_model, expanded_train)`` ready for
        :meth:`~repro.app.service.RecommendationService.refresh_model`.
    """
    if not model.is_fitted:
        raise NotFittedError(model.name)
    if not new_user_items:
        raise ConfigurationError("fold_in_users needs at least one new user")
    from scipy import sparse

    old_users = train.users
    items = train.items
    new_ids = sorted(new_user_items)
    for user_id in new_ids:
        if user_id in old_users:
            raise ConfigurationError(
                f"user {user_id!r} is already in the catalogue; fold-in is "
                "for brand-new users (retrain to update existing ones)"
            )
    rows_of_items: list[np.ndarray] = []
    for user_id in new_ids:
        books = list(new_user_items[user_id])
        if not books:
            raise ConfigurationError(
                f"new user {user_id!r} has an empty history; fold-in needs "
                "at least one read item"
            )
        try:
            rows_of_items.append(items.indices_of(books))
        except KeyError as exc:
            raise ConfigurationError(
                f"new user {user_id!r} references unknown book {exc.args[0]!r}"
            ) from exc

    # Solve the new rows, then splice everything into the sorted order the
    # expanded indexer assigns (same permutation trick as restrict_users).
    new_factors = np.stack(
        [
            model.fold_in(item_rows, regularization=regularization)
            for item_rows in rows_of_items
        ]
    )
    users = Indexer(list(old_users.ids) + new_ids)
    concat_ids = list(old_users.ids) + new_ids
    order = users.indices_of(concat_ids)
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))

    V = np.concatenate([model.user_factors, new_factors])[inverse]
    new_rows = sparse.csr_matrix(
        (
            np.ones(sum(len(rows) for rows in rows_of_items), dtype=np.float64),
            np.concatenate(rows_of_items),
            np.cumsum([0] + [len(rows) for rows in rows_of_items]),
        ),
        shape=(len(new_ids), len(items)),
    )
    stacked = sparse.vstack([train.csr, new_rows]).tocsr()[inverse]
    expanded = InteractionMatrix(users, items, stacked)

    folded = BPR(model.config)
    folded._train = expanded
    folded._user_factors = V
    folded._item_factors = model.item_factors
    return folded, expanded

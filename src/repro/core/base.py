"""The :class:`Recommender` interface shared by all algorithms.

The contract mirrors the paper's Section 4: a recommender is fitted on the
training interactions (plus, for content-based models, the merged dataset's
metadata), produces a relevance *score* for every (user, item) pair, and
recommends the top-``k`` items by score. Whether already-read books are
excluded from recommendations is a per-model property: Random Items and the
personalised models skip them, while Most Read Items deliberately does not
("the same recommendations apply to all users").
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, NotFittedError

#: Score assigned to masked (already read) items before ranking.
EXCLUDED_SCORE = -np.inf


class Recommender(abc.ABC):
    """Base class for all recommenders.

    Subclasses implement :meth:`_fit` and :meth:`score_users`; everything
    else (top-k cutting, seen-item masking, full rankings) is shared.
    """

    #: Whether recommendations skip books the user has already read.
    exclude_seen: bool = True

    def __init__(self) -> None:
        self._train: InteractionMatrix | None = None

    # ------------------------------------------------------------------
    # template methods
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable algorithm name (defaults to the class name)."""
        return type(self).__name__

    @property
    def is_fitted(self) -> bool:
        return self._train is not None

    @property
    def train(self) -> InteractionMatrix:
        if self._train is None:
            raise NotFittedError(self.name)
        return self._train

    def fit(
        self, train: InteractionMatrix, dataset: MergedDataset | None = None
    ) -> "Recommender":
        """Fit on the training interactions.

        ``dataset`` provides book metadata; content-based models require it
        and collaborative models ignore it.
        """
        self._train = train
        self._fit(train, dataset)
        return self

    @abc.abstractmethod
    def _fit(
        self, train: InteractionMatrix, dataset: MergedDataset | None
    ) -> None:
        """Model-specific fitting logic."""

    @abc.abstractmethod
    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        """Relevance scores for a batch of users.

        Returns a ``(len(user_indices), n_items)`` float matrix. Higher is
        better; scores are only compared within a row, so scales need not
        match across models.
        """

    # ------------------------------------------------------------------
    # shared recommendation logic
    # ------------------------------------------------------------------

    def masked_scores(self, user_indices: np.ndarray) -> np.ndarray:
        """Scores with already-read items masked out (if the model excludes
        them).

        The mask is applied as a single CSR-driven scatter
        (:func:`mask_seen_rows`): the chunk's (row, item) pairs are
        materialised directly from the training matrix's
        ``indptr``/``indices`` arrays and written with one fancy-index
        assignment, avoiding any per-user Python loop.
        """
        user_indices = np.asarray(user_indices, dtype=np.int64)
        scores = self.score_users(user_indices)
        if self.exclude_seen and len(user_indices):
            mask_seen_rows(scores, self.train.csr, user_indices)
        return scores

    def masked_scores_reference(self, user_indices: np.ndarray) -> np.ndarray:
        """The pre-vectorisation masking path (per-user loop).

        Kept as the behavioural reference for the fast-path equivalence
        tests; produces bit-identical output to :meth:`masked_scores`.
        """
        user_indices = np.asarray(user_indices, dtype=np.int64)
        scores = self.score_users(user_indices)
        if self.exclude_seen:
            train = self.train
            for row, user_index in enumerate(user_indices):
                scores[row, train.user_items(int(user_index))] = EXCLUDED_SCORE
        return scores

    def rank_items(self, user_index: int) -> np.ndarray:
        """The user's full ranking: item indices sorted by decreasing score.

        Masked items sort last. Used by the First Rank (FR) metric, which
        the paper computes on the full ranking rather than the top-k cut.
        """
        scores = self.masked_scores(np.asarray([user_index]))[0]
        return np.argsort(-scores, kind="stable")

    def recommend(self, user_index: int, k: int) -> np.ndarray:
        """Top-``k`` item indices for one user (``R_u`` in the paper).

        Masked (already read) items are never recommended, so fewer than
        ``k`` items come back when the user has read nearly the whole
        catalogue.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        scores = self.masked_scores(np.asarray([user_index]))[0]
        return _top_k(scores, k)

    def recommend_batch(
        self, user_indices: np.ndarray, k: int
    ) -> list[np.ndarray]:
        """:meth:`recommend` for many users in one scoring pass.

        The top-k cut (:func:`top_k_rows`) runs a single ``argpartition``
        over the whole chunk (axis 1) followed by one vectorised stable
        sort of the k selected columns, instead of per-row partition/sort
        calls. Returns one array per user (lengths may differ near
        catalogue exhaustion, so the result is a list rather than a
        matrix); rankings are identical to calling :meth:`recommend` per
        user.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        user_indices = np.asarray(user_indices, dtype=np.int64)
        return top_k_rows(self.masked_scores(user_indices), k)

    def recommend_batch_reference(
        self, user_indices: np.ndarray, k: int
    ) -> list[np.ndarray]:
        """Per-row top-k reference for the batch fast path (tests only)."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        scores = self.masked_scores(user_indices)
        return [_top_k(row, k) for row in scores]


def _top_k(scores: np.ndarray, k: int) -> np.ndarray:
    k = min(k, len(scores))
    partition = np.argpartition(-scores, kth=k - 1)[:k]
    ordered = partition[np.argsort(-scores[partition], kind="stable")]
    return ordered[scores[ordered] > EXCLUDED_SCORE]


def mask_seen_rows(
    scores: np.ndarray, csr, user_indices: np.ndarray
) -> np.ndarray:
    """Scatter :data:`EXCLUDED_SCORE` over each row's seen items, in place.

    ``csr`` is the training interaction matrix's CSR form; row ``r`` of
    ``scores`` belongs to ``user_indices[r]``. This is the shared masking
    kernel behind :meth:`Recommender.masked_scores` and the serving
    layer's shard-coalesced scoring — one implementation, so the two
    paths cannot drift apart. Returns ``scores`` for chaining.
    """
    starts = csr.indptr[user_indices]
    counts = csr.indptr[user_indices + 1] - starts
    total = int(counts.sum())
    if total:
        rows = np.repeat(np.arange(len(user_indices)), counts)
        ends = np.cumsum(counts)
        within = np.arange(total) - np.repeat(ends - counts, counts)
        cols = csr.indices[np.repeat(starts, counts) + within]
        scores[rows, cols] = EXCLUDED_SCORE
    return scores


def top_k_rows(scores: np.ndarray, k: int) -> list[np.ndarray]:
    """Batched top-k cut over a ``(rows, n_items)`` score matrix.

    One ``argpartition`` over the chunk, one vectorised stable sort of
    the selected columns; rows with fewer than ``k`` unmasked items come
    back short. The shared cut kernel behind
    :meth:`Recommender.recommend_batch` and the serving layer's
    coalesced batch scoring.
    """
    if scores.shape[0] == 0:
        return []
    kth = min(k, scores.shape[1])
    partition = np.argpartition(-scores, kth=kth - 1, axis=1)[:, :kth]
    part_scores = np.take_along_axis(scores, partition, axis=1)
    order = np.argsort(-part_scores, axis=1, kind="stable")
    top = np.take_along_axis(partition, order, axis=1)
    top_scores = np.take_along_axis(part_scores, order, axis=1)
    return [
        items[row_scores > EXCLUDED_SCORE]
        for items, row_scores in zip(top, top_scores)
    ]

"""The Random Items baseline (paper Section 4).

Given a user, recommend ``k`` uniformly random books the user has not read
yet. The paper uses it "to understand if the RecSys is properly learning":
any trained model must clear this bar.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.rng import derive_rng


class RandomItems(Recommender):
    """Uniformly random scores, re-drawn deterministically per user.

    Scores are generated from a per-user stream seeded by (model seed, user
    index), so the same user always receives the same "random" ranking —
    evaluation stays reproducible while different users get independent
    draws.
    """

    exclude_seen = True

    def __init__(self, seed: int | None = None) -> None:
        super().__init__()
        self.seed = seed

    @property
    def name(self) -> str:
        return "Random Items"

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        self._n_items = train.n_items

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        scores = np.empty((len(user_indices), self._n_items), dtype=np.float64)
        for row, user_index in enumerate(np.asarray(user_indices)):
            rng = derive_rng(self.seed, "random-items", str(int(user_index)))
            scores[row] = rng.random(self._n_items)
        return scores

"""The recommenders (paper Section 4) and their shared substrate.

Four algorithms from the paper plus two extensions:

- :class:`~repro.core.random_items.RandomItems` — random unread books
  (baseline);
- :class:`~repro.core.most_read.MostReadItems` — global top-k by readings,
  identical for every user (baseline);
- :class:`~repro.core.closest_items.ClosestItems` — content-based: average
  embedding similarity to the user's history (Equation 1);
- :class:`~repro.core.bpr.BPR` — collaborative filtering: matrix
  factorisation trained with WARP-sampled pairwise ranking (Equations 2-3);
- :class:`~repro.core.item_knn.ItemKNN` — item-item co-occurrence CF
  (extension; a classical comparator);
- :class:`~repro.core.hybrid.HybridRecommender` — CB+CF score blend
  (extension; the paper's natural follow-up);
- :class:`~repro.core.sequential.SequentialMarkov` — first-order
  sequential recommendation (the paper's declared future work).

All of them implement the :class:`~repro.core.base.Recommender` interface
over an :class:`~repro.core.interactions.InteractionMatrix`.
"""

from repro.core.base import Recommender
from repro.core.interactions import Indexer, InteractionMatrix
from repro.core.random_items import RandomItems
from repro.core.most_read import MostReadItems
from repro.core.closest_items import ClosestItems
from repro.core.bpr import BPR, BPRConfig
from repro.core.item_knn import ItemKNN
from repro.core.hybrid import HybridRecommender
from repro.core.sequential import SequentialMarkov
from repro.core.registry import available_models, create_model, register_model

__all__ = [
    "Recommender",
    "Indexer",
    "InteractionMatrix",
    "RandomItems",
    "MostReadItems",
    "ClosestItems",
    "BPR",
    "BPRConfig",
    "ItemKNN",
    "HybridRecommender",
    "SequentialMarkov",
    "available_models",
    "create_model",
    "register_model",
]

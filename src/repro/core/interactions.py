"""User-item interaction matrices for implicit feedback.

The paper's matrix ``I`` (Section 4, BPR): ``i[u, b] = 1`` when user ``u``
read book ``b``. We additionally keep the multiplicity (times read), which
the Most Read Items baseline needs; binary views are derived on demand.

Indexers map external ids (user id strings, book id ints) to contiguous
matrix indices, and are shared between the train/validation/test splits so
an index means the same user or book everywhere.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.errors import DatasetError, UnknownUserError
from repro.tables import Table


class Indexer:
    """A bidirectional mapping between external ids and contiguous indices.

    Ids are sorted at construction, so the same id set always produces the
    same index assignment regardless of input order.
    """

    def __init__(self, ids: Iterable[Hashable]) -> None:
        self._ids: tuple = tuple(sorted(set(ids)))
        self._index_of = {value: i for i, value in enumerate(self._ids)}
        # The ids are sorted, so bulk lookups can binary-search a cached
        # array instead of doing one dict probe per element.
        self._id_array = self._as_flat_array(self._ids)

    @staticmethod
    def _as_flat_array(values: Sequence[Hashable]) -> np.ndarray | None:
        """A sortable 1-D array view of ``values``, or None if numpy would
        mangle them (e.g. tuples becoming a 2-D array, or fixed-width
        strings truncating trailing NULs so distinct ids collide)."""
        if not values:
            return None
        try:
            array = np.asarray(values)
        except (TypeError, ValueError):
            return None
        if array.ndim != 1 or len(array) != len(values):
            return None
        if array.tolist() != list(values):
            return None
        return array

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index_of

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Indexer):
            return NotImplemented
        return self._ids == other._ids

    def __hash__(self) -> int:
        return hash(self._ids)

    def index_of(self, value: Hashable) -> int:
        """Index of an external id; raises :class:`KeyError` when unknown."""
        return self._index_of[value]

    def id_of(self, index: int) -> Hashable:
        """External id at a matrix index."""
        return self._ids[index]

    @property
    def ids(self) -> tuple:
        return self._ids

    def indices_of(self, values: Sequence[Hashable]) -> np.ndarray:
        """Vectorised :meth:`index_of` over a sequence.

        Uses one ``np.searchsorted`` over the sorted id array instead of a
        per-element dict lookup; unknown values raise :class:`KeyError`
        exactly like :meth:`index_of`.
        """
        values = list(values)
        if not values:
            return np.empty(0, dtype=np.int64)
        values_array = self._as_flat_array(values)
        if self._id_array is None or values_array is None:
            return np.asarray(
                [self._index_of[value] for value in values], dtype=np.int64
            )
        try:
            positions = np.searchsorted(self._id_array, values_array)
        except (TypeError, ValueError):
            return np.asarray(
                [self._index_of[value] for value in values], dtype=np.int64
            )
        positions = np.minimum(positions, len(self._ids) - 1)
        matched = self._id_array[positions] == values_array
        matched = np.asarray(matched, dtype=bool)
        if not matched.all():
            missing = values[int(np.flatnonzero(~matched)[0])]
            raise KeyError(missing)
        return positions.astype(np.int64, copy=False)


class InteractionMatrix:
    """A users × items sparse matrix of reading counts."""

    def __init__(
        self, users: Indexer, items: Indexer, matrix: sparse.csr_matrix
    ) -> None:
        if matrix.shape != (len(users), len(items)):
            raise DatasetError(
                f"matrix shape {matrix.shape} does not match indexers "
                f"({len(users)} users, {len(items)} items)"
            )
        self.users = users
        self.items = items
        self.csr = matrix.tocsr()
        self.csr.sum_duplicates()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[Hashable, Hashable]],
        users: Indexer | None = None,
        items: Indexer | None = None,
    ) -> "InteractionMatrix":
        """Build from (user id, item id) events; repeats accumulate counts.

        Index resolution runs through the vectorised
        :meth:`Indexer.indices_of` (one binary search over the sorted id
        arrays) rather than one dict probe per event.
        """
        user_ids: list = []
        item_ids: list = []
        for user, item in pairs:
            user_ids.append(user)
            item_ids.append(item)
        return cls.from_id_lists(user_ids, item_ids, users=users, items=items)

    @classmethod
    def from_id_lists(
        cls,
        user_ids: Sequence[Hashable],
        item_ids: Sequence[Hashable],
        users: Indexer | None = None,
        items: Indexer | None = None,
    ) -> "InteractionMatrix":
        """Build from parallel user-id / item-id columns.

        The columnar counterpart of :meth:`from_pairs` — no per-event
        tuples are materialised, so this is the entry point for the
        streaming/out-of-core paths where the event count is large.
        """
        if len(user_ids) != len(item_ids):
            raise DatasetError(
                f"user ids ({len(user_ids)}) and item ids ({len(item_ids)}) "
                "must have equal length"
            )
        if users is None:
            users = Indexer(user_ids)
        if items is None:
            items = Indexer(item_ids)
        rows = users.indices_of(user_ids)
        cols = items.indices_of(item_ids)
        data = np.ones(len(user_ids), dtype=np.float64)
        matrix = sparse.coo_matrix(
            (data, (rows, cols)), shape=(len(users), len(items))
        )
        return cls(users, items, matrix.tocsr())

    @classmethod
    def from_readings_table(
        cls,
        readings: Table,
        users: Indexer | None = None,
        items: Indexer | None = None,
    ) -> "InteractionMatrix":
        """Build from a merged ``readings`` table (user_id, book_id columns).

        Columns convert via ``ndarray.tolist()`` (one C-level pass that
        yields the same Python ``str``/``int`` ids the row-wise path
        produced) instead of a per-element generator, keeping the
        construction linear-time and allocation-light at corpus scale.
        """
        return cls.from_id_lists(
            readings["user_id"].tolist(),
            readings["book_id"].tolist(),
            users=users,
            items=items,
        )

    # ------------------------------------------------------------------
    # views and accessors
    # ------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def n_interactions(self) -> int:
        """Number of distinct (user, item) pairs."""
        return self.csr.nnz

    def user_items(self, user_index: int) -> np.ndarray:
        """Indices of the items a user interacted with (``N_u``)."""
        if not 0 <= user_index < self.n_users:
            raise UnknownUserError(user_index)
        start, end = self.csr.indptr[user_index], self.csr.indptr[user_index + 1]
        return self.csr.indices[start:end]

    def user_history_sizes(self) -> np.ndarray:
        """Distinct items per user, for the Fig. 4 group analysis."""
        return np.diff(self.csr.indptr)

    def item_counts(self) -> np.ndarray:
        """Total readings per item (with multiplicity) — popularity."""
        return np.asarray(self.csr.sum(axis=0)).ravel()

    def binary(self) -> sparse.csr_matrix:
        """A 0/1 copy of the matrix (the paper's ``I``)."""
        out = self.csr.copy()
        out.data = np.ones_like(out.data)
        return out

    def positive_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All distinct (user index, item index) interactions as two arrays."""
        coo = self.csr.tocoo()
        return coo.row.astype(np.int64), coo.col.astype(np.int64)

    def interaction_keys(self) -> np.ndarray:
        """Sorted ``user * n_items + item`` keys for O(log n) membership tests.

        Used by the BPR negative sampler to reject sampled "negatives" the
        user has actually read.
        """
        rows, cols = self.positive_pairs()
        return np.sort(rows * np.int64(self.n_items) + cols)

    def restrict_users(self, user_indices: np.ndarray) -> "InteractionMatrix":
        """A matrix over a subset of users (item indexing unchanged)."""
        user_indices = np.asarray(user_indices, dtype=np.int64)
        sub = self.csr[user_indices]
        users = Indexer(self.users.id_of(int(i)) for i in user_indices)
        order = users.indices_of([self.users.id_of(int(i)) for i in user_indices])
        # `users` sorts ids; permute rows to match the sorted indexer.
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order))
        return InteractionMatrix(users, self.items, sub[inverse])

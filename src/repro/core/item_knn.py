"""Item-item nearest-neighbour CF (extension, not in the paper).

A classical collaborative comparator: two books are similar when the same
users read both (cosine over the interaction matrix columns), and a user's
score for an unread book is the summed similarity to their history,
optionally truncated to each book's top-``n`` neighbours. Useful as a
sanity comparator for BPR — a healthy dataset should let both beat the
content-based model's URR.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, NotFittedError


class ItemKNN(Recommender):
    """Cosine item-item collaborative filtering.

    Args:
        n_neighbors: keep only each item's strongest ``n`` co-read links;
            ``None`` keeps the full similarity matrix.
        shrinkage: damping added to the norm product, discounting
            similarities supported by very few common readers.
    """

    exclude_seen = True

    def __init__(self, n_neighbors: int | None = 50, shrinkage: float = 5.0) -> None:
        super().__init__()
        if n_neighbors is not None and n_neighbors < 1:
            raise ConfigurationError(
                f"n_neighbors must be >= 1 or None, got {n_neighbors}"
            )
        if shrinkage < 0:
            raise ConfigurationError(f"shrinkage must be >= 0, got {shrinkage}")
        self.n_neighbors = n_neighbors
        self.shrinkage = shrinkage
        self._similarity: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "Item kNN"

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        binary = train.binary().astype(np.float64)
        overlap = np.asarray((binary.T @ binary).todense())
        norms = np.sqrt(overlap.diagonal())
        denominator = np.outer(norms, norms) + self.shrinkage
        similarity = overlap / np.where(denominator > 0, denominator, 1.0)
        np.fill_diagonal(similarity, 0.0)
        if self.n_neighbors is not None and self.n_neighbors < similarity.shape[0] - 1:
            # Zero everything outside each row's top-n neighbours.
            cutoff = np.partition(
                similarity, -self.n_neighbors, axis=1
            )[:, -self.n_neighbors][:, None]
            similarity = np.where(similarity >= cutoff, similarity, 0.0)
        self._similarity = similarity

    @property
    def similarity(self) -> np.ndarray:
        if self._similarity is None:
            raise NotFittedError(self.name)
        return self._similarity

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        train = self.train
        rows = train.binary()[np.asarray(user_indices, dtype=np.int64)]
        return np.asarray((rows @ sparse.csr_matrix(self.similarity)).todense())

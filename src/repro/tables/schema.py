"""Typed schemas for columnar tables.

A :class:`Schema` is an ordered collection of :class:`Column` definitions.
Each column carries one of five logical dtypes, which map onto numpy storage:

========  =====================  =========================================
logical   numpy storage          notes
========  =====================  =========================================
int       int64                  nullable values are not supported
float     float64                NaN is the missing value
str       object                 arbitrary python strings
bool      bool8                  ``True`` / ``False``
date      datetime64[D]          calendar dates (loan dates, rating dates)
========  =====================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ColumnNotFoundError, SchemaError

LOGICAL_DTYPES = ("int", "float", "str", "bool", "date")

_NUMPY_DTYPES = {
    "int": np.dtype(np.int64),
    "float": np.dtype(np.float64),
    "str": np.dtype(object),
    "bool": np.dtype(np.bool_),
    "date": np.dtype("datetime64[D]"),
}


@dataclass(frozen=True)
class Column:
    """A single column definition: a name and a logical dtype."""

    name: str
    dtype: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be a non-empty string")
        if self.dtype not in LOGICAL_DTYPES:
            raise SchemaError(
                f"column {self.name!r} has unknown dtype {self.dtype!r}; "
                f"expected one of {LOGICAL_DTYPES}"
            )

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store this column."""
        return _NUMPY_DTYPES[self.dtype]


class Schema:
    """An ordered, immutable collection of :class:`Column` definitions."""

    def __init__(self, columns: Iterable[Column | tuple[str, str]]) -> None:
        normalized = []
        for column in columns:
            if isinstance(column, tuple):
                column = Column(*column)
            normalized.append(column)
        names = [column.name for column in normalized]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        self._columns: tuple[Column, ...] = tuple(normalized)
        self._by_name = {column.name: column for column in self._columns}

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.names) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        fields = ", ".join(f"{c.name}:{c.dtype}" for c in self._columns)
        return f"Schema({fields})"

    def select(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names``, in the given order."""
        return Schema([self[name] for name in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with columns renamed per ``mapping``."""
        for old in mapping:
            if old not in self:
                raise ColumnNotFoundError(old, self.names)
        return Schema(
            [Column(mapping.get(c.name, c.name), c.dtype) for c in self._columns]
        )

    def coerce_column(self, name: str, values: Sequence) -> np.ndarray:
        """Coerce ``values`` into the numpy array storage for column ``name``.

        Raises :class:`SchemaError` when a value cannot be represented in the
        column's dtype (for example a string in an int column).
        """
        column = self[name]
        try:
            if column.dtype == "str":
                array = np.empty(len(values), dtype=object)
                for i, value in enumerate(values):
                    if value is not None and not isinstance(value, str):
                        raise TypeError(f"expected str, got {type(value).__name__}")
                    array[i] = value
                return array
            if column.dtype == "date":
                return _coerce_dates(values)
            return np.asarray(values, dtype=column.numpy_dtype)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce values into column {name!r} ({column.dtype}): {exc}"
            ) from exc


def _coerce_dates(values: Sequence) -> np.ndarray:
    """Convert dates, ISO strings, or datetime64 values into datetime64[D]."""
    if isinstance(values, np.ndarray) and np.issubdtype(values.dtype, np.datetime64):
        return values.astype("datetime64[D]")
    converted = []
    for value in values:
        if isinstance(value, date):
            converted.append(np.datetime64(value.isoformat(), "D"))
        elif isinstance(value, (str, np.datetime64)):
            converted.append(np.datetime64(value, "D"))
        else:
            raise TypeError(
                f"expected date/ISO string/datetime64, got {type(value).__name__}"
            )
    return np.asarray(converted, dtype="datetime64[D]")


def infer_schema(columns: dict[str, Sequence]) -> Schema:
    """Infer a :class:`Schema` from a mapping of column name to values.

    Inference looks at the first non-missing value of each column; empty
    columns default to ``str``.
    """
    inferred = []
    for name, values in columns.items():
        inferred.append(Column(name, _infer_dtype(values)))
    return Schema(inferred)


def _infer_dtype(values: Sequence) -> str:
    if isinstance(values, np.ndarray):
        if np.issubdtype(values.dtype, np.datetime64):
            return "date"
        if values.dtype == np.bool_:
            return "bool"
        if np.issubdtype(values.dtype, np.integer):
            return "int"
        if np.issubdtype(values.dtype, np.floating):
            return "float"
        return "str"
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, np.integer)):
            return "int"
        if isinstance(value, (float, np.floating)):
            return "float"
        if isinstance(value, (date, np.datetime64)):
            return "date"
        return "str"
    return "str"

"""A small columnar table engine.

The preprocessing pipeline of the paper is a data-integration task: filter
two catalogues, join them, aggregate crowd-sourced genre votes, and build a
unified readings table. This subpackage provides the relational substrate
those steps run on — a typed, immutable, numpy-backed columnar
:class:`Table` with filter/select/join/group-by/sort operations and
CSV/JSONL/columnar-npz round-trips.

Example:
    >>> from repro.tables import Table
    >>> t = Table.from_columns({"book_id": [1, 2, 3], "title": ["a", "b", "c"]})
    >>> t.filter(t["book_id"] > 1).num_rows
    2
"""

from repro.tables.schema import Column, Schema
from repro.tables.table import Table, concat_tables
from repro.tables.io import (
    read_csv,
    read_jsonl,
    read_npz_columns,
    write_csv,
    write_jsonl,
    write_npz_columns,
)
from repro.tables import ops

__all__ = [
    "Column",
    "Schema",
    "Table",
    "concat_tables",
    "read_csv",
    "read_jsonl",
    "read_npz_columns",
    "write_csv",
    "write_jsonl",
    "write_npz_columns",
    "ops",
]

"""The columnar :class:`Table` and its relational operations.

Tables are immutable: every operation returns a new table that shares the
unchanged column arrays with its parent (copy-on-write at column
granularity). Columns are numpy arrays, so predicates are vectorised masks
(``table["loans"] > 10``) and aggregations run at numpy speed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ColumnNotFoundError, SchemaError
from repro.tables.schema import Column, Schema, infer_schema


class Table:
    """An immutable, typed, columnar table."""

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]) -> None:
        if set(columns) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(columns)} do not match schema {schema.names}"
            )
        lengths = {name: len(array) for name, array in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"columns have differing lengths: {lengths}")
        self._schema = schema
        self._columns = {name: columns[name] for name in schema.names}
        self._num_rows = next(iter(lengths.values())) if lengths else 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls, columns: Mapping[str, Sequence], schema: Schema | None = None
    ) -> "Table":
        """Build a table from a mapping of column name to values.

        When ``schema`` is omitted it is inferred from the values.
        """
        if schema is None:
            schema = infer_schema(dict(columns))
        coerced = {
            name: schema.coerce_column(name, values) for name, values in columns.items()
        }
        return cls(schema, coerced)

    @classmethod
    def from_rows(
        cls, rows: Iterable[Mapping[str, object]], schema: Schema
    ) -> "Table":
        """Build a table from an iterable of row dicts, validated by ``schema``."""
        buffers: dict[str, list] = {name: [] for name in schema.names}
        for i, row in enumerate(rows):
            missing = set(schema.names) - set(row)
            if missing:
                raise SchemaError(f"row {i} is missing columns {sorted(missing)}")
            for name in schema.names:
                buffers[name].append(row[name])
        return cls.from_columns(buffers, schema=schema)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """Return a zero-row table with the given schema."""
        return cls.from_columns({name: [] for name in schema.names}, schema=schema)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    def __len__(self) -> int:
        return self._num_rows

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.column_names) from None

    def column(self, name: str) -> np.ndarray:
        """Alias of ``table[name]`` for readability in pipelines."""
        return self[name]

    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a plain dict (scalars unwrapped)."""
        if not -self._num_rows <= index < self._num_rows:
            raise IndexError(f"row {index} out of range for {self._num_rows} rows")
        return {name: _unwrap(self._columns[name][index]) for name in self.column_names}

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Iterate over rows as dicts. Convenient but slow; prefer columns."""
        for i in range(self._num_rows):
            yield self.row(i)

    def to_pylist(self) -> list[dict[str, object]]:
        """Materialise the table as a list of row dicts."""
        return list(self.iter_rows())

    def __repr__(self) -> str:
        return f"Table({self._num_rows} rows, schema={self._schema!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._num_rows != other._num_rows:
            return False
        for name in self.column_names:
            left, right = self._columns[name], other._columns[name]
            if self._schema[name].dtype == "float":
                if not np.allclose(left, right, equal_nan=True):
                    return False
            elif not np.array_equal(left, right):
                return False
        return True

    # ------------------------------------------------------------------
    # relational operations
    # ------------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project the table onto ``names`` (order preserved as given)."""
        schema = self._schema.select(names)
        return Table(schema, {name: self._columns[name] for name in names})

    def drop(self, names: Sequence[str]) -> "Table":
        """Return the table without the given columns."""
        for name in names:
            if name not in self._schema:
                raise ColumnNotFoundError(name, self.column_names)
        keep = [name for name in self.column_names if name not in set(names)]
        return self.select(keep)

    def rename(self, mapping: dict[str, str]) -> "Table":
        """Rename columns per ``mapping`` (old name -> new name)."""
        schema = self._schema.rename(mapping)
        columns = {
            mapping.get(name, name): array for name, array in self._columns.items()
        }
        return Table(schema, columns)

    def filter(self, mask: np.ndarray | Callable[["Table"], np.ndarray]) -> "Table":
        """Keep rows where ``mask`` is True.

        ``mask`` is either a boolean array of length ``num_rows`` or a
        callable receiving the table and returning such an array.
        """
        if callable(mask):
            mask = mask(self)
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self._num_rows,):
            raise SchemaError(
                f"filter mask must be a boolean array of length {self._num_rows}, "
                f"got dtype={mask.dtype} shape={mask.shape}"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: np.ndarray | Sequence[int]) -> "Table":
        """Return the rows at ``indices`` (gather; duplicates allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        columns = {name: array[indices] for name, array in self._columns.items()}
        return Table(self._schema, columns)

    def head(self, n: int = 10) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._num_rows)))

    def sort(self, by: str | Sequence[str], descending: bool = False) -> "Table":
        """Stable sort by one or more columns."""
        names = [by] if isinstance(by, str) else list(by)
        if not names:
            raise SchemaError("sort requires at least one column")
        keys = [self._sortable(name) for name in reversed(names)]
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def _sortable(self, name: str) -> np.ndarray:
        array = self[name]
        if array.dtype == object:
            return np.asarray([value if value is not None else "" for value in array])
        return array

    def with_column(self, name: str, values: Sequence, dtype: str | None = None) -> "Table":
        """Return a table with ``name`` added (or replaced) by ``values``."""
        if dtype is None:
            dtype = infer_schema({name: values})[name].dtype
        new_column = Column(name, dtype)
        columns = dict(self._columns)
        if name in self._schema:
            schema = Schema(
                [new_column if c.name == name else c for c in self._schema]
            )
        else:
            schema = Schema(list(self._schema) + [new_column])
        columns[name] = schema.coerce_column(name, values)
        if len(columns[name]) != self._num_rows:
            raise SchemaError(
                f"new column {name!r} has {len(columns[name])} values, "
                f"expected {self._num_rows}"
            )
        return Table(schema, columns)

    def unique(self, name: str) -> np.ndarray:
        """Return the sorted unique values of a column."""
        array = self[name]
        if array.dtype == object:
            return np.asarray(sorted({value for value in array}))
        return np.unique(array)

    def value_counts(self, name: str) -> dict[object, int]:
        """Return ``{value: occurrence count}`` for a column."""
        values, counts = np.unique(self._sortable(name), return_counts=True)
        return {
            _unwrap(value): int(count) for value, count in zip(values, counts)
        }

    def group_by(self, by: str | Sequence[str]) -> "GroupedTable":
        """Group rows by one or more key columns."""
        names = [by] if isinstance(by, str) else list(by)
        if not names:
            raise SchemaError("group_by requires at least one column")
        for name in names:
            self[name]  # raises ColumnNotFoundError early
        return GroupedTable(self, names)

    def join(
        self,
        other: "Table",
        on: str | Sequence[str],
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Table":
        """Hash join with ``other`` on the given key column(s).

        Supports ``how`` in {"inner", "left"}. Non-key columns of ``other``
        that collide with columns of ``self`` are renamed with ``suffix``.
        For left joins, unmatched right-side values are NaN for floats,
        ``None`` for strings, and raise for int/bool/date columns (those
        dtypes have no missing-value representation; select or filter first).
        """
        keys = [on] if isinstance(on, str) else list(on)
        if how not in ("inner", "left"):
            raise SchemaError(f"unsupported join type {how!r}; use 'inner' or 'left'")
        for key in keys:
            if self._schema[key].dtype != other._schema[key].dtype:
                raise SchemaError(
                    f"join key {key!r} has dtype {self._schema[key].dtype} on the "
                    f"left and {other._schema[key].dtype} on the right"
                )

        right_index: dict[tuple, list[int]] = {}
        right_keys = _key_rows(other, keys)
        for i, key in enumerate(right_keys):
            right_index.setdefault(key, []).append(i)

        left_rows: list[int] = []
        right_rows: list[int] = []  # -1 marks "no match" (left join only)
        for i, key in enumerate(_key_rows(self, keys)):
            matches = right_index.get(key)
            if matches:
                left_rows.extend([i] * len(matches))
                right_rows.extend(matches)
            elif how == "left":
                left_rows.append(i)
                right_rows.append(-1)

        left_part = self.take(np.asarray(left_rows, dtype=np.int64))
        result_columns = dict(left_part._columns)
        result_schema = list(left_part._schema)

        right_rows_arr = np.asarray(right_rows, dtype=np.int64)
        unmatched = right_rows_arr < 0
        for column in other._schema:
            if column.name in keys:
                continue
            out_name = column.name
            if out_name in self._schema:
                out_name = out_name + suffix
                if out_name in self._schema:
                    raise SchemaError(
                        f"column {column.name!r} collides even after suffixing"
                    )
            gathered = other._columns[column.name][np.where(unmatched, 0, right_rows_arr)]
            if unmatched.any():
                gathered = _mask_missing(gathered, unmatched, column)
            result_columns[out_name] = gathered
            result_schema.append(Column(out_name, column.dtype))
        return Table(Schema(result_schema), result_columns)


def _key_rows(table: Table, keys: Sequence[str]) -> list[tuple]:
    columns = [table[key] for key in keys]
    return [tuple(_unwrap(col[i]) for col in columns) for i in range(table.num_rows)]


def _mask_missing(array: np.ndarray, unmatched: np.ndarray, column: Column) -> np.ndarray:
    if column.dtype == "float":
        out = array.astype(np.float64, copy=True)
        out[unmatched] = np.nan
        return out
    if column.dtype == "str":
        out = array.copy()
        out[unmatched] = None
        return out
    raise SchemaError(
        f"left join produced missing values for column {column.name!r} of dtype "
        f"{column.dtype}, which has no missing-value representation"
    )


def _unwrap(value: object) -> object:
    """Convert numpy scalar types to plain python for row dicts and keys."""
    if isinstance(value, np.generic):
        return value.item()
    return value


class GroupedTable:
    """The result of :meth:`Table.group_by`: grouped row indices plus keys."""

    def __init__(self, table: Table, keys: Sequence[str]) -> None:
        self._table = table
        self._keys = list(keys)
        index: dict[tuple, list[int]] = {}
        for i, key in enumerate(_key_rows(table, self._keys)):
            index.setdefault(key, []).append(i)
        self._groups = index

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[tuple[tuple, Table]]:
        """Iterate ``(key_tuple, sub_table)`` pairs in first-seen order."""
        for key, rows in self._groups.items():
            yield key, self._table.take(np.asarray(rows, dtype=np.int64))

    def sizes(self) -> dict[tuple, int]:
        """Return ``{key_tuple: group size}``."""
        return {key: len(rows) for key, rows in self._groups.items()}

    def aggregate(
        self, spec: Mapping[str, tuple[str, Callable[[np.ndarray], object]]]
    ) -> Table:
        """Aggregate each group into one output row.

        ``spec`` maps an output column name to ``(input column, function)``
        where the function reduces a numpy array to a scalar, e.g.
        ``{"n_loans": ("loan_id", ops.count)}``. Key columns are always
        included in the output.
        """
        out: dict[str, list] = {key: [] for key in self._keys}
        for name in spec:
            if name in out:
                raise SchemaError(
                    f"aggregate output {name!r} collides with a group key"
                )
            out[name] = []
        for key, rows in self._groups.items():
            for key_name, key_value in zip(self._keys, key):
                out[key_name].append(key_value)
            indices = np.asarray(rows, dtype=np.int64)
            for name, (source, func) in spec.items():
                out[name].append(func(self._table[source][indices]))
        return Table.from_columns(out)


def concat_tables(tables: Sequence[Table]) -> Table:
    """Concatenate tables with identical schemas, preserving row order."""
    if not tables:
        raise SchemaError("concat_tables requires at least one table")
    schema = tables[0].schema
    for table in tables[1:]:
        if table.schema != schema:
            raise SchemaError(
                f"cannot concat tables with different schemas: "
                f"{schema!r} vs {table.schema!r}"
            )
    columns = {
        name: np.concatenate([table[name] for table in tables])
        for name in schema.names
    }
    return Table(schema, columns)

"""CSV, JSONL and columnar npz round-trips for :class:`repro.tables.Table`.

Both formats store a typed header so a table reloads with its exact schema:
CSV uses a ``name:dtype`` header convention, JSONL writes a leading schema
record. These files are how synthetic dataset dumps are persisted and how
the example applications exchange data.

Writes are crash-safe: both writers go through
:func:`repro.resilience.artefacts.atomic_write` (temp file + fsync +
rename), so a crash mid-write leaves the previous file — or nothing —
under the destination name, never a half-written table.
"""

from __future__ import annotations

import csv
import json
import zipfile
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import TableIOError
from repro.resilience.artefacts import atomic_write
from repro.tables.schema import Column, Schema
from repro.tables.table import Table

_MISSING = ""


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV with a typed ``name:dtype`` header."""
    path = Path(path)
    try:
        with atomic_write(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(f"{c.name}:{c.dtype}" for c in table.schema)
            columns = [table[name] for name in table.column_names]
            for i in range(table.num_rows):
                writer.writerow(_to_cell(col[i]) for col in columns)
    except OSError as exc:
        raise TableIOError(f"cannot write CSV to {path}: {exc}") from exc


def read_csv(path: str | Path) -> Table:
    """Read a table previously written by :func:`write_csv`."""
    path = Path(path)
    try:
        with path.open("r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise TableIOError(f"{path} is empty; expected a typed header")
            schema = _parse_header(header, path)
            buffers: list[list[str]] = [[] for _ in schema]
            for line_no, row in enumerate(reader, start=2):
                if len(row) != len(schema):
                    raise TableIOError(
                        f"{path}:{line_no}: expected {len(schema)} cells, "
                        f"got {len(row)}"
                    )
                for buffer, cell in zip(buffers, row):
                    buffer.append(cell)
    except OSError as exc:
        raise TableIOError(f"cannot read CSV from {path}: {exc}") from exc
    columns = {
        column.name: _from_cells(values, column)
        for column, values in zip(schema, buffers)
    }
    return Table(schema, columns)


def write_jsonl(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as JSONL with a leading schema record."""
    path = Path(path)
    try:
        with atomic_write(path, "w", encoding="utf-8") as handle:
            schema_record = {
                "__schema__": [[c.name, c.dtype] for c in table.schema]
            }
            handle.write(json.dumps(schema_record) + "\n")
            for row in table.iter_rows():
                handle.write(json.dumps(_jsonable(row)) + "\n")
    except OSError as exc:
        raise TableIOError(f"cannot write JSONL to {path}: {exc}") from exc


def read_jsonl(path: str | Path) -> Table:
    """Read a table previously written by :func:`write_jsonl`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            first = handle.readline()
            if not first:
                raise TableIOError(f"{path} is empty; expected a schema record")
            try:
                schema_record = json.loads(first)
                pairs = schema_record["__schema__"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise TableIOError(
                    f"{path}: first line is not a schema record: {exc}"
                ) from exc
            schema = Schema([Column(name, dtype) for name, dtype in pairs])
            buffers: dict[str, list] = {name: [] for name in schema.names}
            for line_no, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TableIOError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
                for name in schema.names:
                    if name not in record:
                        raise TableIOError(
                            f"{path}:{line_no}: missing field {name!r}"
                        )
                    buffers[name].append(record[name])
    except OSError as exc:
        raise TableIOError(f"cannot read JSONL from {path}: {exc}") from exc
    columns = {
        column.name: schema.coerce_column(column.name, buffers[column.name])
        for column in schema
    }
    return Table(schema, columns)


def write_npz_columns(path: str | Path, columns: dict[str, np.ndarray]) -> None:
    """Write named columnar arrays to ``path`` as an uncompressed ``.npz``.

    The shard format used by the out-of-core corpus: numeric, boolean,
    datetime and fixed-width unicode arrays only — ``object`` columns are
    rejected so the files never require ``allow_pickle`` to load. The write
    is crash-safe (temp file + fsync + rename via :func:`atomic_write`).
    """
    path = Path(path)
    for name, array in columns.items():
        if array.dtype == object:
            raise TableIOError(
                f"column {name!r} has dtype=object; npz shards hold only "
                "numeric/unicode arrays (no pickle)"
            )
    try:
        with atomic_write(path, "wb") as handle:
            np.savez(handle, **columns)
    except OSError as exc:
        raise TableIOError(f"cannot write npz to {path}: {exc}") from exc


def read_npz_columns(
    path: str | Path, names: Sequence[str] | None = None
) -> dict[str, np.ndarray]:
    """Read the column arrays previously written by :func:`write_npz_columns`.

    ``names`` selects a subset of columns; the npz container is lazy, so
    unselected columns are never decompressed into memory — the streaming
    merge's second pass reads only the columns it emits.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            keys = data.files if names is None else list(names)
            return {name: data[name] for name in keys}
    except KeyError as exc:
        raise TableIOError(f"{path} has no column {exc}") from exc
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise TableIOError(f"cannot read npz from {path}: {exc}") from exc


def _parse_header(header: list[str], path: Path) -> Schema:
    columns = []
    for cell in header:
        name, sep, dtype = cell.rpartition(":")
        if not sep or not name:
            raise TableIOError(
                f"{path}: header cell {cell!r} is not in 'name:dtype' form"
            )
        columns.append(Column(name, dtype))
    return Schema(columns)


def _to_cell(value: object) -> str:
    if value is None:
        return _MISSING
    if isinstance(value, np.datetime64):
        return str(value)
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _from_cells(values: list[str], column: Column) -> np.ndarray:
    if column.dtype == "int":
        return np.asarray([int(v) for v in values], dtype=np.int64)
    if column.dtype == "float":
        return np.asarray(
            [float(v) if v != _MISSING else np.nan for v in values], dtype=np.float64
        )
    if column.dtype == "bool":
        return np.asarray([v == "true" for v in values], dtype=np.bool_)
    if column.dtype == "date":
        return np.asarray(values, dtype="datetime64[D]")
    array = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        array[i] = value
    return array


def _jsonable(row: dict[str, object]) -> dict[str, object]:
    import datetime

    out = {}
    for name, value in row.items():
        if isinstance(value, np.datetime64):
            out[name] = str(value)
        elif isinstance(value, datetime.date):
            out[name] = value.isoformat()
        elif isinstance(value, np.generic):
            out[name] = value.item()
        else:
            out[name] = value
    return out

"""Aggregation functions for :meth:`repro.tables.Table.group_by`.

Each function reduces a numpy column slice to a scalar, so they compose with
``GroupedTable.aggregate``:

    >>> from repro.tables import Table, ops
    >>> t = Table.from_columns({"user": ["a", "a", "b"], "n": [1, 2, 10]})
    >>> agg = t.group_by("user").aggregate({"total": ("n", ops.sum_)})
    >>> sorted(zip(agg["user"], agg["total"].tolist()))
    [('a', 3), ('b', 10)]
"""

from __future__ import annotations

import numpy as np


def count(values: np.ndarray) -> int:
    """Number of values in the group."""
    return int(len(values))


def count_distinct(values: np.ndarray) -> int:
    """Number of distinct values in the group."""
    return int(len(set(values.tolist())))


def sum_(values: np.ndarray) -> float:
    """Sum of the values (named with a trailing underscore to avoid the builtin)."""
    return values.sum().item()


def mean(values: np.ndarray) -> float:
    """Arithmetic mean of the values."""
    return float(np.mean(values))


def median(values: np.ndarray) -> float:
    """Median of the values."""
    return float(np.median(values))


def min_(values: np.ndarray) -> object:
    """Minimum value in the group."""
    result = values.min()
    return result.item() if isinstance(result, np.generic) else result


def max_(values: np.ndarray) -> object:
    """Maximum value in the group."""
    result = values.max()
    return result.item() if isinstance(result, np.generic) else result


def first(values: np.ndarray) -> object:
    """First value in the group (tables preserve input order)."""
    if len(values) == 0:
        raise ValueError("first() on an empty group")
    value = values[0]
    return value.item() if isinstance(value, np.generic) else value


def quantile(q: float):
    """Return an aggregation computing the ``q``-quantile (0 <= q <= 1)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")

    def _quantile(values: np.ndarray) -> float:
        return float(np.quantile(values, q))

    _quantile.__name__ = f"quantile_{q}"
    return _quantile


def collect_list(values: np.ndarray) -> list:
    """Materialise the group's values as a python list (stored as str column).

    Useful for debugging; the result column is inferred as ``str`` unless the
    caller coerces it, so prefer scalar aggregations in pipelines.
    """
    return values.tolist()

"""Evaluation harness (paper Section 5).

- :mod:`repro.eval.split` — the per-user temporal split: 20 % of each BCT
  user's readings form the test set, the rest (and all Anobii readings)
  split 80/20 into train/validation.
- :mod:`repro.eval.metrics` — URR, NRR, Precision, Recall, First Rank
  (Equations 4-7) plus MAP/NDCG extensions.
- :mod:`repro.eval.evaluator` — end-to-end: fit, score, rank, measure.
- :mod:`repro.eval.grid` — the BPR hyper-parameter grid search.
- :mod:`repro.eval.groups` — the history-size group analysis of Fig. 4.
"""

from repro.eval.split import DatasetSplit, SplitConfig, split_readings
from repro.eval.metrics import KPIReport, compute_kpis
from repro.eval.evaluator import EvaluationResult, evaluate_model, fit_and_evaluate
from repro.eval.grid import GridSearchResult, grid_search_bpr
from repro.eval.groups import GroupKPIs, evaluate_by_history_size
from repro.eval.beyond_accuracy import (
    BeyondAccuracyReport,
    evaluate_beyond_accuracy,
)
from repro.eval.bootstrap import (
    ConfidenceInterval,
    PairedComparison,
    bootstrap_metric,
    paired_bootstrap_difference,
)

__all__ = [
    "DatasetSplit",
    "SplitConfig",
    "split_readings",
    "KPIReport",
    "compute_kpis",
    "EvaluationResult",
    "evaluate_model",
    "fit_and_evaluate",
    "GridSearchResult",
    "grid_search_bpr",
    "GroupKPIs",
    "evaluate_by_history_size",
    "BeyondAccuracyReport",
    "evaluate_beyond_accuracy",
    "ConfidenceInterval",
    "PairedComparison",
    "bootstrap_metric",
    "paired_bootstrap_difference",
]

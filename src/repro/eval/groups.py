"""History-size group analysis (paper Fig. 4).

The paper bins BCT users by how many books they have in the training set —
bins chosen so each holds roughly the same number of users — and reports
the NRR of every model per bin. The headline finding: the content-based
model improves sharply with history size (overtaking BPR in the largest
bin) while BPR is nearly flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError
from repro.eval.evaluator import EvaluationResult


@dataclass(frozen=True)
class HistoryBin:
    """One equal-population bin of users by training-history size."""

    low: int
    high: int
    n_users: int

    @property
    def label(self) -> str:
        if self.low == self.high:
            return str(self.low)
        return f"{self.low}-{self.high}"


@dataclass(frozen=True)
class GroupKPIs:
    """Per-bin NRR (and URR) for one evaluated model."""

    model_name: str
    bins: tuple[HistoryBin, ...]
    nrr: tuple[float, ...]
    urr: tuple[float, ...]


def equal_population_bins(
    train_sizes: np.ndarray, n_bins: int
) -> tuple[HistoryBin, ...]:
    """Quantile bin edges over the users' training-history sizes.

    Adjacent bins with identical edges (heavy ties at small sizes) are
    merged, so fewer than ``n_bins`` bins may come back.
    """
    if n_bins < 1:
        raise EvaluationError(f"n_bins must be >= 1, got {n_bins}")
    sizes = np.asarray(train_sizes)
    if len(sizes) == 0:
        raise EvaluationError("no users to bin")
    quantiles = np.quantile(sizes, np.linspace(0, 1, n_bins + 1))
    edges = np.unique(np.round(quantiles).astype(np.int64))
    if len(edges) == 1:
        edges = np.asarray([edges[0], edges[0]])
    bins = []
    for i in range(len(edges) - 1):
        low = int(edges[i]) if i == 0 else int(edges[i]) + 1
        high = int(edges[i + 1])
        if high < low:
            continue
        mask = (sizes >= low) & (sizes <= high)
        bins.append(HistoryBin(low=low, high=high, n_users=int(mask.sum())))
    return tuple(bins)


def evaluate_by_history_size(
    result: EvaluationResult,
    k: int,
    bins: tuple[HistoryBin, ...] | None = None,
    n_bins: int = 4,
) -> GroupKPIs:
    """Slice an evaluation's per-user outcomes into history-size bins.

    Pass the same ``bins`` to every model so the Fig. 4 series share the
    x-axis; omit it to derive equal-population bins from this result.
    """
    per_user = result.per_user
    if k not in per_user.hits:
        raise EvaluationError(
            f"result has no hits at k={k}; available: {sorted(per_user.hits)}"
        )
    if bins is None:
        bins = equal_population_bins(per_user.train_sizes, n_bins)
    hits = per_user.hits[k]
    nrr: list[float] = []
    urr: list[float] = []
    for hist_bin in bins:
        mask = (per_user.train_sizes >= hist_bin.low) & (
            per_user.train_sizes <= hist_bin.high
        )
        if not mask.any():
            nrr.append(float("nan"))
            urr.append(float("nan"))
            continue
        nrr.append(float(hits[mask].mean()))
        urr.append(float((hits[mask] > 0).mean()))
    return GroupKPIs(
        model_name=result.model_name,
        bins=bins,
        nrr=tuple(nrr),
        urr=tuple(urr),
    )

"""Beyond-accuracy metrics: diversity, novelty, serendipity, coverage.

The paper's conclusion flags these as future work: its KPIs "are
objectively trying to predict the next relevant books", providing no
serendipity. This module implements the four standard beyond-accuracy
measures over the same evaluation artefacts (a fitted model, the split,
and an item-item similarity matrix):

- **intra-list diversity** — 1 minus the mean pairwise similarity of the
  recommended list; higher = the k books are less alike;
- **novelty** — mean self-information ``-log2(popularity share)`` of the
  recommended books; higher = deeper into the catalogue tail;
- **serendipity** — the share of *relevant* recommendations that are
  dissimilar from everything the user has already read (an unexpected hit);
- **catalogue coverage** — the fraction of the catalogue recommended to at
  least one user.

Similarity comes from any item-item matrix; the natural choice is the
content embedding of :class:`~repro.core.closest_items.ClosestItems`, so
"dissimilar" means "not like anything on the user's shelf".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Recommender
from repro.errors import EvaluationError
from repro.eval.split import DatasetSplit

#: A relevant recommendation counts as serendipitous when its maximum
#: content similarity to the user's history falls below this.
DEFAULT_SERENDIPITY_THRESHOLD = 0.35


@dataclass(frozen=True)
class BeyondAccuracyReport:
    """The four beyond-accuracy metrics at one k."""

    k: int
    diversity: float
    novelty: float
    serendipity: float
    coverage: float

    def as_row(self) -> dict[str, float]:
        return {
            "Div": self.diversity,
            "Nov": self.novelty,
            "Ser": self.serendipity,
            "Cov": self.coverage,
        }


def evaluate_beyond_accuracy(
    model: Recommender,
    split: DatasetSplit,
    similarity: np.ndarray,
    k: int = 20,
    serendipity_threshold: float = DEFAULT_SERENDIPITY_THRESHOLD,
) -> BeyondAccuracyReport:
    """Compute diversity/novelty/serendipity/coverage over BCT test users.

    ``similarity`` is an ``(n_items, n_items)`` matrix in [−1, 1]; the
    content similarity of :class:`ClosestItems` is the intended source.
    """
    n_items = split.train.n_items
    if similarity.shape != (n_items, n_items):
        raise EvaluationError(
            f"similarity matrix has shape {similarity.shape}, expected "
            f"({n_items}, {n_items})"
        )
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")

    popularity = split.train.item_counts().astype(np.float64)
    share = popularity / max(popularity.sum(), 1.0)
    # Books never read in training get the information content of a
    # single reading (they are maximally novel, not infinitely so).
    floor = 1.0 / max(popularity.sum(), 1.0)
    information = -np.log2(np.maximum(share, floor))

    user_indices = np.asarray(sorted(split.test_items), dtype=np.int64)
    diversities: list[float] = []
    novelties: list[float] = []
    serendipitous = 0
    relevant = 0
    recommended_union: set[int] = set()

    for user_index in user_indices:
        items = model.recommend(int(user_index), k)
        if len(items) == 0:
            continue
        recommended_union.update(int(i) for i in items)
        novelties.append(float(information[items].mean()))
        if len(items) > 1:
            block = similarity[np.ix_(items, items)]
            off_diagonal = block.sum() - np.trace(block)
            pairs = len(items) * (len(items) - 1)
            diversities.append(1.0 - float(off_diagonal / pairs))
        history = split.train.user_items(int(user_index))
        hits = set(items.tolist()) & set(split.test_items[int(user_index)].tolist())
        for hit in hits:
            relevant += 1
            closeness = (
                similarity[hit, history].max() if history.size else 0.0
            )
            if closeness < serendipity_threshold:
                serendipitous += 1

    if not novelties:
        raise EvaluationError("no recommendations produced; cannot evaluate")
    return BeyondAccuracyReport(
        k=k,
        diversity=float(np.mean(diversities)) if diversities else 0.0,
        novelty=float(np.mean(novelties)),
        serendipity=serendipitous / relevant if relevant else 0.0,
        coverage=len(recommended_union) / n_items,
    )

"""Bootstrap confidence intervals for the KPIs.

The paper reports point estimates only; with ~6 000 test users, differences
like BPR's URR 0.26 vs Closest's 0.22 deserve uncertainty quantification.
This module resamples *users* with replacement (the KPIs are user-level
means, so the user is the exchangeable unit) to produce:

- percentile confidence intervals for any KPI of one evaluation;
- a *paired* bootstrap for the difference between two models evaluated on
  the same users — pairing removes the between-user variance that
  dominates unpaired comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError
from repro.eval.evaluator import EvaluationResult
from repro.rng import derive_rng

SUPPORTED_METRICS = ("urr", "nrr", "precision", "recall", "first_rank")

DEFAULT_RESAMPLES = 1000


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile bootstrap interval."""

    metric: str
    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.metric}={self.estimate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence * 100:.0f}%"
        )

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _per_user_values(
    result: EvaluationResult, metric: str, k: int
) -> np.ndarray:
    """The user-level values whose mean is the requested KPI."""
    if metric not in SUPPORTED_METRICS:
        raise EvaluationError(
            f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}"
        )
    per_user = result.per_user
    if k not in per_user.hits:
        raise EvaluationError(
            f"result has no hits at k={k}; available: {sorted(per_user.hits)}"
        )
    hits = per_user.hits[k].astype(np.float64)
    if metric == "urr":
        return (hits > 0).astype(np.float64)
    if metric == "nrr":
        return hits
    if metric == "precision":
        return hits / k
    if metric == "recall":
        return hits / per_user.test_sizes
    return per_user.first_ranks.astype(np.float64)


def bootstrap_metric(
    result: EvaluationResult,
    metric: str,
    k: int,
    n_resamples: int = DEFAULT_RESAMPLES,
    confidence: float = 0.95,
    seed: int | None = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for one KPI of one evaluation."""
    if not 0 < confidence < 1:
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise EvaluationError(f"n_resamples must be >= 10, got {n_resamples}")
    values = _per_user_values(result, metric, k)
    rng = derive_rng(seed, "bootstrap", metric)
    n = len(values)
    samples = rng.integers(0, n, size=(n_resamples, n))
    means = values[samples].mean(axis=1)
    alpha = (1.0 - confidence) / 2
    return ConfidenceInterval(
        metric=metric,
        estimate=float(values.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired bootstrap of ``first - second`` on a shared user population."""

    metric: str
    first_name: str
    second_name: str
    difference: float
    low: float
    high: float
    confidence: float

    @property
    def significant(self) -> bool:
        """True when the CI excludes zero."""
        return self.low > 0 or self.high < 0

    def __str__(self) -> str:
        marker = "significant" if self.significant else "not significant"
        return (
            f"{self.first_name} - {self.second_name} on {self.metric}: "
            f"{self.difference:+.3f} [{self.low:+.3f}, {self.high:+.3f}] "
            f"({marker} @{self.confidence * 100:.0f}%)"
        )


def paired_bootstrap_difference(
    first: EvaluationResult,
    second: EvaluationResult,
    metric: str,
    k: int,
    n_resamples: int = DEFAULT_RESAMPLES,
    confidence: float = 0.95,
    seed: int | None = None,
) -> PairedComparison:
    """CI for the difference of one KPI between two models, paired by user."""
    if not np.array_equal(
        first.per_user.user_indices, second.per_user.user_indices
    ):
        raise EvaluationError(
            "paired bootstrap requires both evaluations to cover the same "
            "users in the same order"
        )
    first_values = _per_user_values(first, metric, k)
    second_values = _per_user_values(second, metric, k)
    deltas = first_values - second_values
    rng = derive_rng(seed, "bootstrap", "paired", metric)
    n = len(deltas)
    samples = rng.integers(0, n, size=(n_resamples, n))
    means = deltas[samples].mean(axis=1)
    alpha = (1.0 - confidence) / 2
    return PairedComparison(
        metric=metric,
        first_name=first.model_name,
        second_name=second.model_name,
        difference=float(deltas.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1 - alpha)),
        confidence=confidence,
    )

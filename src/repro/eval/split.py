"""Train / validation / test splitting (paper Section 5).

The paper's protocol is asymmetric across sources:

- *BCT users* (the recommendation targets): 20 % of each user's readings
  form the **test** set; the remaining 80 % splits again 80/20 into train
  and validation.
- *Anobii users*: 80/20 train/validation, no test set — their role is to
  densify the CF training signal.

Splits are *temporal* per user by default (the most recent readings are
held out), matching how the deployed system would be used: recommend the
next books from the past ones. A uniform-random per-user split is available
for robustness checks.

Readings are de-duplicated to distinct books per user (keeping the first
date) before splitting, so a held-out book is never simultaneously in the
user's training history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.interactions import Indexer, InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import EvaluationError
from repro.rng import derive_rng

SPLIT_ORDERS = ("time", "random")


@dataclass(frozen=True)
class SplitConfig:
    """Parameters of the per-user split."""

    test_fraction: float = 0.2
    val_fraction: float = 0.2
    order: str = "time"
    seed: int | None = None
    """Only used when ``order="random"``."""

    def __post_init__(self) -> None:
        if not 0 < self.test_fraction < 1:
            raise EvaluationError(
                f"test_fraction must be in (0, 1), got {self.test_fraction}"
            )
        if not 0 <= self.val_fraction < 1:
            raise EvaluationError(
                f"val_fraction must be in [0, 1), got {self.val_fraction}"
            )
        if self.order not in SPLIT_ORDERS:
            raise EvaluationError(
                f"order must be one of {SPLIT_ORDERS}, got {self.order!r}"
            )


@dataclass(frozen=True)
class DatasetSplit:
    """The result of :func:`split_readings`."""

    train: InteractionMatrix
    val_items: dict[int, np.ndarray]
    """user index -> validation item indices (all users)."""
    test_items: dict[int, np.ndarray]
    """user index -> test item indices (BCT users only)."""
    bct_user_indices: np.ndarray = field(repr=False)

    @property
    def users(self) -> Indexer:
        return self.train.users

    @property
    def items(self) -> Indexer:
        return self.train.items

    def train_sizes(self, user_indices: np.ndarray) -> np.ndarray:
        """Distinct training books per user — the Fig. 4 grouping variable."""
        sizes = self.train.user_history_sizes()
        return sizes[np.asarray(user_indices, dtype=np.int64)]


def split_readings(
    merged: MergedDataset, config: SplitConfig | None = None
) -> DatasetSplit:
    """Split a merged dataset per the paper's protocol (module docstring)."""
    config = config or SplitConfig()
    users = Indexer(merged.user_ids)
    items = Indexer(int(b) for b in merged.books["book_id"])
    bct_users = set(merged.bct_user_ids)

    # Distinct books per user with first-read date and event multiplicity
    # (re-borrows), in reading order. The split is decided on distinct
    # books; multiplicity flows into the training matrix so popularity
    # reflects loan events, as in the raw Loans table.
    first_date: dict[tuple[int, int], np.datetime64] = {}
    event_count: dict[tuple[int, int], int] = {}
    for user_id, book_id, read_date in zip(
        merged.readings["user_id"],
        merged.readings["book_id"],
        merged.readings["read_date"],
    ):
        key = (users.index_of(str(user_id)), items.index_of(int(book_id)))
        event_count[key] = event_count.get(key, 0) + 1
        if key not in first_date or read_date < first_date[key]:
            first_date[key] = read_date

    per_user: dict[int, list[tuple[np.datetime64, int]]] = {}
    for (user_index, item_index), date in first_date.items():
        per_user.setdefault(user_index, []).append((date, item_index))

    rng = derive_rng(config.seed, "split") if config.order == "random" else None
    train_pairs: list[tuple[str, int]] = []
    val_items: dict[int, np.ndarray] = {}
    test_items: dict[int, np.ndarray] = {}
    for user_index, dated in per_user.items():
        ordered = [item for _, item in sorted(dated, key=lambda p: (p[0], p[1]))]
        if rng is not None:
            ordered = [ordered[i] for i in rng.permutation(len(ordered))]
        is_bct = users.id_of(user_index) in bct_users
        train_part, val_part, test_part = _cut(
            ordered, config.test_fraction if is_bct else 0.0, config.val_fraction
        )
        user_id = str(users.id_of(user_index))
        for item_index in train_part:
            multiplicity = event_count[(user_index, item_index)]
            train_pairs.extend(
                [(user_id, items.id_of(item_index))] * multiplicity
            )
        if val_part:
            val_items[user_index] = np.asarray(sorted(val_part), dtype=np.int64)
        if test_part:
            test_items[user_index] = np.asarray(sorted(test_part), dtype=np.int64)

    train = InteractionMatrix.from_pairs(train_pairs, users=users, items=items)
    bct_indices = np.asarray(
        sorted(users.index_of(u) for u in bct_users), dtype=np.int64
    )
    return DatasetSplit(
        train=train,
        val_items=val_items,
        test_items=test_items,
        bct_user_indices=bct_indices,
    )


def _cut(
    ordered: list[int], test_fraction: float, val_fraction: float
) -> tuple[list[int], list[int], list[int]]:
    """Split an ordered reading list into train / val / test tails.

    The most recent ``test_fraction`` goes to test, then the most recent
    ``val_fraction`` of the remainder to validation. Every split keeps at
    least one training item; holdouts get at least one item only when the
    list is long enough to afford it.
    """
    n = len(ordered)
    n_test = int(n * test_fraction)
    if test_fraction > 0 and n_test == 0 and n >= 3:
        n_test = 1
    remaining = n - n_test
    n_val = int(remaining * val_fraction)
    if val_fraction > 0 and n_val == 0 and remaining >= 3:
        n_val = 1
    n_train = n - n_test - n_val
    if n_train < 1:
        n_train, n_val = 1, max(0, remaining - 1)
    train = ordered[:n_train]
    val = ordered[n_train:n_train + n_val]
    test = ordered[n_train + n_val:]
    return train, val, test

"""The paper's KPIs (Section 5) plus standard ranking extensions.

All metrics consume two per-user arrays produced by the evaluator:

- ``hits`` — ``|T_u ∩ R_u|``, the number of held-out books inside the
  user's top-k recommendations;
- ``first_ranks`` — the 1-based position of the first held-out book in the
  user's *full* ranking (FR is independent of k, per the paper).

together with ``test_sizes`` (``|T_u|``) and the cut-off ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError


@dataclass(frozen=True)
class KPIReport:
    """The five KPIs of Table 1, at one value of k."""

    k: int
    urr: float
    """Users with Relevant Recommendations — Eq. (4)."""
    nrr: float
    """average Number of Relevant Recommendations — Eq. (5)."""
    precision: float
    """Eq. (6)."""
    recall: float
    """Eq. (7)."""
    first_rank: float
    """average First Rank position (lower is better; k-independent)."""

    def as_row(self) -> dict[str, float]:
        """The KPI values keyed like the paper's Table 1 header."""
        return {
            "URR": self.urr,
            "NRR": self.nrr,
            "P": self.precision,
            "R": self.recall,
            "FR": self.first_rank,
        }


def compute_kpis(
    hits: np.ndarray,
    test_sizes: np.ndarray,
    first_ranks: np.ndarray,
    k: int,
) -> KPIReport:
    """Aggregate per-user counters into a :class:`KPIReport`."""
    hits = np.asarray(hits, dtype=np.float64)
    test_sizes = np.asarray(test_sizes, dtype=np.float64)
    first_ranks = np.asarray(first_ranks, dtype=np.float64)
    if not (len(hits) == len(test_sizes) == len(first_ranks)):
        raise EvaluationError(
            f"per-user arrays disagree in length: {len(hits)}, "
            f"{len(test_sizes)}, {len(first_ranks)}"
        )
    if len(hits) == 0:
        raise EvaluationError("cannot compute KPIs over zero users")
    if (test_sizes <= 0).any():
        raise EvaluationError("every evaluated user needs a non-empty test set")
    return KPIReport(
        k=k,
        urr=float((hits > 0).mean()),
        nrr=float(hits.mean()),
        precision=float((hits / k).mean()),
        recall=float((hits / test_sizes).mean()),
        first_rank=float(first_ranks.mean()),
    )


def hits_at_k(rank_of_items: np.ndarray, k: int) -> int:
    """Count of held-out items ranked within the top ``k`` (ranks 1-based)."""
    return int((rank_of_items <= k).sum())


def first_rank(rank_of_items: np.ndarray) -> int:
    """The best (lowest) rank among the held-out items, 1-based."""
    if len(rank_of_items) == 0:
        raise EvaluationError("first_rank of an empty holdout is undefined")
    return int(rank_of_items.min())


# ----------------------------------------------------------------------
# extensions beyond the paper (used by the extended example / diagnostics)
# ----------------------------------------------------------------------

def average_precision(rank_of_items: np.ndarray, k: int) -> float:
    """AP@k for one user, given the 1-based ranks of the held-out items."""
    ranks = np.sort(rank_of_items[rank_of_items <= k])
    if len(ranks) == 0:
        return 0.0
    precisions = np.arange(1, len(ranks) + 1) / ranks
    return float(precisions.sum() / min(len(rank_of_items), k))


def ndcg(rank_of_items: np.ndarray, k: int) -> float:
    """NDCG@k for one user with binary relevance."""
    ranks = rank_of_items[rank_of_items <= k]
    if len(ranks) == 0:
        return 0.0
    dcg = float((1.0 / np.log2(ranks + 1)).sum())
    ideal_count = min(len(rank_of_items), k)
    ideal = float((1.0 / np.log2(np.arange(1, ideal_count + 1) + 1)).sum())
    return dcg / ideal

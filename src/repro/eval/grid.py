"""BPR hyper-parameter grid search (paper Section 6, first paragraph).

The paper sweeps the number of latent factors and the learning rate and
keeps the combination maximising URR on the validation set (20 latent
factors, learning rate 0.2 on their data). This module reproduces that
procedure for any grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bpr import BPR, BPRConfig
from repro.datasets.merged import MergedDataset
from repro.errors import EvaluationError
from repro.eval.evaluator import fit_and_evaluate
from repro.eval.split import DatasetSplit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span

DEFAULT_FACTOR_GRID = (5, 10, 20, 40)
DEFAULT_LEARNING_RATE_GRID = (0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class GridPoint:
    """One evaluated grid cell."""

    n_factors: int
    learning_rate: float
    val_urr: float
    val_nrr: float


@dataclass(frozen=True)
class GridSearchResult:
    """All grid cells plus the URR-maximising configuration."""

    points: tuple[GridPoint, ...]
    best: GridPoint
    k: int

    def as_matrix(self) -> dict[tuple[int, float], float]:
        """``{(n_factors, learning_rate): val URR}`` for reporting."""
        return {
            (p.n_factors, p.learning_rate): p.val_urr for p in self.points
        }


def grid_search_bpr(
    split: DatasetSplit,
    dataset: MergedDataset,
    base_config: BPRConfig | None = None,
    factor_grid: tuple[int, ...] = DEFAULT_FACTOR_GRID,
    learning_rate_grid: tuple[float, ...] = DEFAULT_LEARNING_RATE_GRID,
    k: int = 20,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> GridSearchResult:
    """Sweep (n_factors, learning_rate), scoring URR@k on BCT validation.

    ``base_config`` supplies everything the grid does not vary (epochs,
    sampler, seed, ...). ``tracer``/``metrics`` thread into every cell's
    :class:`BPR` and evaluation: the sweep is one ``grid.search`` span
    with a ``grid.cell`` child per configuration, and each cell's
    validation URR/NRR land in ``grid.val_urr``/``grid.val_nrr`` gauges
    labelled by the cell coordinates.
    """
    if not factor_grid or not learning_rate_grid:
        raise EvaluationError("both grid axes need at least one value")
    base_config = base_config or BPRConfig()
    points: list[GridPoint] = []
    with start_span(
        tracer, "grid.search",
        cells=len(factor_grid) * len(learning_rate_grid), k=k,
    ):
        for n_factors in factor_grid:
            for learning_rate in learning_rate_grid:
                config = replace(
                    base_config,
                    n_factors=n_factors,
                    learning_rate=learning_rate,
                )
                with start_span(
                    tracer, "grid.cell",
                    n_factors=n_factors, learning_rate=learning_rate,
                ) as span:
                    result = fit_and_evaluate(
                        BPR(config, tracer=tracer, metrics=metrics),
                        split, dataset, ks=(k,), holdout="val",
                        tracer=tracer, metrics=metrics,
                    )
                    report = result.report(k)
                    span.set_attrs(val_urr=report.urr, val_nrr=report.nrr)
                if metrics is not None:
                    labels = {
                        "n_factors": str(n_factors),
                        "learning_rate": str(learning_rate),
                    }
                    metrics.counter("grid.cells").inc()
                    metrics.gauge("grid.val_urr").labels(**labels).set(
                        report.urr
                    )
                    metrics.gauge("grid.val_nrr").labels(**labels).set(
                        report.nrr
                    )
                points.append(
                    GridPoint(
                        n_factors=n_factors,
                        learning_rate=learning_rate,
                        val_urr=report.urr,
                        val_nrr=report.nrr,
                    )
                )
    best = max(points, key=lambda p: (p.val_urr, p.val_nrr))
    return GridSearchResult(points=tuple(points), best=best, k=k)

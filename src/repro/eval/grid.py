"""BPR hyper-parameter grid search (paper Section 6, first paragraph).

The paper sweeps the number of latent factors and the learning rate and
keeps the combination maximising URR on the validation set (20 latent
factors, learning rate 0.2 on their data). This module reproduces that
procedure for any grid.

Grid cells are independent workloads, so the sweep parallelises per
cell: ``grid_search_bpr(..., n_jobs=N)`` runs configurations on a
:class:`~repro.parallel.WorkerPool` (process backend by default). Each
cell trains from its own :class:`~repro.core.bpr.BPRConfig` — including
its own seed — so the winner and every KPI are bit-identical to the
serial sweep regardless of backend or scheduling; the equivalence suite
(``tests/parallel/test_equivalence.py``) pins that down. Worker-side
telemetry is not lost: each cell records into a private tracer/metrics
registry whose snapshot the parent folds back in with
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` and
:meth:`~repro.obs.trace.Tracer.adopt`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bpr import BPR, BPRConfig
from repro.datasets.merged import MergedDataset
from repro.errors import EvaluationError
from repro.eval.evaluator import fit_and_evaluate
from repro.eval.split import DatasetSplit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.parallel.pool import WorkerPool, shared_payload, task_seeds

DEFAULT_FACTOR_GRID = (5, 10, 20, 40)
DEFAULT_LEARNING_RATE_GRID = (0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class GridPoint:
    """One evaluated grid cell."""

    n_factors: int
    learning_rate: float
    val_urr: float
    val_nrr: float


@dataclass(frozen=True)
class GridSearchResult:
    """All grid cells plus the URR-maximising configuration."""

    points: tuple[GridPoint, ...]
    best: GridPoint
    k: int

    def as_matrix(self) -> dict[tuple[int, float], float]:
        """``{(n_factors, learning_rate): val URR}`` for reporting."""
        return {
            (p.n_factors, p.learning_rate): p.val_urr for p in self.points
        }


@dataclass(frozen=True)
class _GridCellTask:
    """Everything cell-specific one worker needs for one grid cell.

    Deliberately small — a config, a ``k``, a seed — because the heavy
    read-only payload (the split and the dataset, identical for every
    cell) travels once per worker through the pool's ``shared`` channel
    instead of once per task. ``trace_seed`` seeds the worker's private
    tracer id stream; it never influences training, which draws from
    ``config.seed`` alone.
    """

    config: BPRConfig
    k: int
    trace_seed: int
    traced: bool


def _evaluate_grid_cell(task: _GridCellTask) -> tuple[float, float, dict, list]:
    """Evaluate one cell in a worker (module-level for pickling).

    Reads ``(split, dataset)`` from the pool's shared payload and
    returns ``(val_urr, val_nrr, metrics snapshot, span dicts)`` — plain
    data only, so the result crosses a process boundary cheaply.
    """
    split, dataset = shared_payload()
    tracer = Tracer(seed=task.trace_seed) if task.traced else None
    metrics = MetricsRegistry()
    with start_span(
        tracer, "grid.cell",
        n_factors=task.config.n_factors,
        learning_rate=task.config.learning_rate,
    ) as span:
        result = fit_and_evaluate(
            BPR(task.config, tracer=tracer, metrics=metrics),
            split, dataset, ks=(task.k,), holdout="val",
            tracer=tracer, metrics=metrics,
        )
        report = result.report(task.k)
        span.set_attrs(val_urr=report.urr, val_nrr=report.nrr)
    spans = [s.as_dict() for s in tracer.spans] if tracer is not None else []
    return report.urr, report.nrr, metrics.snapshot(), spans


def grid_search_bpr(
    split: DatasetSplit,
    dataset: MergedDataset,
    base_config: BPRConfig | None = None,
    factor_grid: tuple[int, ...] = DEFAULT_FACTOR_GRID,
    learning_rate_grid: tuple[float, ...] = DEFAULT_LEARNING_RATE_GRID,
    k: int = 20,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    n_jobs: int = 1,
    backend: str = "auto",
    kernel: str | None = None,
    workers: int | None = None,
) -> GridSearchResult:
    """Sweep (n_factors, learning_rate), scoring URR@k on BCT validation.

    ``base_config`` supplies everything the grid does not vary (epochs,
    sampler, seed, ...). ``kernel``/``workers``, when given, override the
    training tier on every cell's config (see
    :class:`~repro.core.bpr.BPRConfig`); the default leaves the
    ``base_config`` tier untouched. ``tracer``/``metrics`` thread into every cell's
    :class:`BPR` and evaluation: the sweep is one ``grid.search`` span
    with a ``grid.cell`` child per configuration, and each cell's
    validation URR/NRR land in ``grid.val_urr``/``grid.val_nrr`` gauges
    labelled by the cell coordinates.

    ``n_jobs``/``backend`` select the execution backend (see
    :class:`~repro.parallel.WorkerPool`): with ``n_jobs > 1`` the
    independent cells run on worker processes (or threads) and return
    the bit-identical winner and points of the serial sweep, with
    per-cell metrics snapshots merged into ``metrics`` and per-cell
    spans adopted into ``tracer`` in cell order.

    Raises:
        EvaluationError: when either grid axis is empty.
    """
    if not factor_grid or not learning_rate_grid:
        raise EvaluationError("both grid axes need at least one value")
    base_config = base_config or BPRConfig()
    if kernel is not None:
        base_config = replace(base_config, kernel=kernel)
    if workers is not None:
        base_config = replace(base_config, workers=workers)
    cells = [
        (n_factors, learning_rate)
        for n_factors in factor_grid
        for learning_rate in learning_rate_grid
    ]
    pool = WorkerPool(n_jobs=n_jobs, backend=backend, shared=(split, dataset))
    if pool.backend == "serial":
        points = _sweep_serial(
            cells, base_config, split, dataset, k, tracer, metrics
        )
    else:
        with pool:
            points = _sweep_parallel(
                cells, base_config, k, tracer, metrics, pool
            )
    best = max(points, key=lambda p: (p.val_urr, p.val_nrr))
    return GridSearchResult(points=tuple(points), best=best, k=k)


def _sweep_serial(
    cells: list[tuple[int, float]],
    base_config: BPRConfig,
    split: DatasetSplit,
    dataset: MergedDataset,
    k: int,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
) -> list[GridPoint]:
    """The reference path: every cell in-process, in grid order."""
    points: list[GridPoint] = []
    with start_span(
        tracer, "grid.search", cells=len(cells), k=k,
    ):
        for n_factors, learning_rate in cells:
            config = replace(
                base_config,
                n_factors=n_factors,
                learning_rate=learning_rate,
            )
            with start_span(
                tracer, "grid.cell",
                n_factors=n_factors, learning_rate=learning_rate,
            ) as span:
                result = fit_and_evaluate(
                    BPR(config, tracer=tracer, metrics=metrics),
                    split, dataset, ks=(k,), holdout="val",
                    tracer=tracer, metrics=metrics,
                )
                report = result.report(k)
                span.set_attrs(val_urr=report.urr, val_nrr=report.nrr)
            _record_cell(metrics, n_factors, learning_rate, report.urr,
                         report.nrr)
            points.append(
                GridPoint(
                    n_factors=n_factors,
                    learning_rate=learning_rate,
                    val_urr=report.urr,
                    val_nrr=report.nrr,
                )
            )
    return points


def _sweep_parallel(
    cells: list[tuple[int, float]],
    base_config: BPRConfig,
    k: int,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    pool: WorkerPool,
) -> list[GridPoint]:
    """The distributed path: one task per cell, telemetry merged back.

    The split and dataset ride the pool's shared channel (set by
    :func:`grid_search_bpr`), so each task pickles only its config.
    """
    trace_seeds = task_seeds(base_config.seed, "grid.cells", len(cells))
    tasks = [
        _GridCellTask(
            config=replace(
                base_config, n_factors=n_factors, learning_rate=learning_rate
            ),
            k=k,
            trace_seed=trace_seed,
            traced=tracer is not None,
        )
        for (n_factors, learning_rate), trace_seed in zip(cells, trace_seeds)
    ]
    with start_span(
        tracer, "grid.search", cells=len(cells), k=k,
        n_jobs=pool.n_jobs, backend=pool.backend,
    ):
        outcomes = pool.map(_evaluate_grid_cell, tasks, chunk_size=1)
    points: list[GridPoint] = []
    for (n_factors, learning_rate), outcome in zip(cells, outcomes):
        val_urr, val_nrr, snapshot, spans = outcome
        if tracer is not None:
            tracer.adopt(spans)
        if metrics is not None:
            metrics.merge_snapshot(snapshot)
        _record_cell(metrics, n_factors, learning_rate, val_urr, val_nrr)
        points.append(
            GridPoint(
                n_factors=n_factors,
                learning_rate=learning_rate,
                val_urr=val_urr,
                val_nrr=val_nrr,
            )
        )
    return points


def _record_cell(
    metrics: MetricsRegistry | None,
    n_factors: int,
    learning_rate: float,
    val_urr: float,
    val_nrr: float,
) -> None:
    """Record one cell's KPI gauges exactly as the serial loop always has."""
    if metrics is None:
        return
    labels = {
        "n_factors": str(n_factors),
        "learning_rate": str(learning_rate),
    }
    metrics.counter("grid.cells").inc()
    metrics.gauge("grid.val_urr").labels(**labels).set(val_urr)
    metrics.gauge("grid.val_nrr").labels(**labels).set(val_nrr)

"""End-to-end model evaluation.

For each target user the evaluator asks the model for its full ranking
(scores with the model's own seen-item masking), reads off the rank of
every held-out book, and aggregates the paper's KPIs — for one ``k`` or a
whole sweep in a single scoring pass (Fig. 3 evaluates k = 1..50 without
re-scoring).

Timing hooks cover Table 2: ``fit_seconds`` wraps the training call and
``recommend_seconds_per_user`` measures per-request latency over a sample
of users, mimicking the deployed request path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Recommender
from repro.datasets.merged import MergedDataset
from repro.errors import EvaluationError
from repro.eval.metrics import KPIReport, compute_kpis
from repro.eval.split import DatasetSplit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span

DEFAULT_CHUNK_SIZE = 256
LATENCY_SAMPLE_USERS = 50

#: Held-out rank computation strategies: "count" derives each rank by
#: counting the scores above it (one value sort + binary searches per row,
#: the fast path); "argsort" ranks every item of every user via a full
#: stable argsort (the original reference path). Both produce identical
#: integer ranks.
RANK_METHODS = ("count", "argsort")


@dataclass(frozen=True)
class PerUserOutcome:
    """Per-user evaluation arrays, aligned with ``user_indices``."""

    user_indices: np.ndarray
    train_sizes: np.ndarray
    test_sizes: np.ndarray
    hits: dict[int, np.ndarray]
    """k -> per-user hit counts at that k."""
    first_ranks: np.ndarray


@dataclass(frozen=True)
class EvaluationResult:
    """KPIs (per k) plus timing and per-user details for one model."""

    model_name: str
    kpis: dict[int, KPIReport]
    per_user: PerUserOutcome = field(repr=False)
    fit_seconds: float | None = None
    recommend_seconds_per_user: float | None = None

    def report(self, k: int) -> KPIReport:
        if k not in self.kpis:
            raise EvaluationError(
                f"no KPIs computed at k={k}; available: {sorted(self.kpis)}"
            )
        return self.kpis[k]


def fit_and_evaluate(
    model: Recommender,
    split: DatasetSplit,
    dataset: MergedDataset,
    ks: tuple[int, ...] = (20,),
    holdout: str = "test",
    measure_latency: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> EvaluationResult:
    """Fit ``model`` on the split's training matrix, then evaluate it.

    ``tracer``/``metrics`` are optional observability hooks: the fit is
    wrapped in an ``eval.fit`` span and ``fit_seconds`` lands in an
    ``eval.fit_seconds`` gauge; both forward into :func:`evaluate_model`.
    """
    started = time.perf_counter()
    with start_span(tracer, "eval.fit", model=model.name):
        model.fit(split.train, dataset)
    fit_seconds = time.perf_counter() - started
    if metrics is not None:
        metrics.gauge("eval.fit_seconds").labels(model=model.name).set(
            fit_seconds
        )
    result = evaluate_model(
        model, split, ks=ks, holdout=holdout,
        measure_latency=measure_latency, tracer=tracer, metrics=metrics,
    )
    return EvaluationResult(
        model_name=result.model_name,
        kpis=result.kpis,
        per_user=result.per_user,
        fit_seconds=fit_seconds,
        recommend_seconds_per_user=result.recommend_seconds_per_user,
    )


def evaluate_model(
    model: Recommender,
    split: DatasetSplit,
    ks: tuple[int, ...] = (20,),
    holdout: str = "test",
    measure_latency: bool = False,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    rank_method: str = "count",
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> EvaluationResult:
    """Evaluate an already-fitted model.

    ``holdout`` selects the ground truth: ``"test"`` (BCT users, the
    paper's Table 1 setting) or ``"val"`` restricted to BCT users (the grid
    search setting). ``rank_method`` picks the held-out rank computation
    (see :data:`RANK_METHODS`); the default counting path never sorts the
    full catalogue and is the serving-scale fast path.

    ``tracer`` wraps the scoring pass in an ``eval.evaluate`` span with
    one ``eval.chunk`` child per score chunk; ``metrics`` lands every KPI
    in gauges labelled by model and k (``eval.urr``, ``eval.nrr``,
    ``eval.precision``, ``eval.recall``, ``eval.first_rank``).
    """
    if not ks:
        raise EvaluationError("at least one k is required")
    if any(k < 1 for k in ks):
        raise EvaluationError(f"all k must be >= 1, got {ks}")
    if rank_method not in RANK_METHODS:
        raise EvaluationError(
            f"rank_method must be one of {RANK_METHODS}, got {rank_method!r}"
        )
    holdout_items = _select_holdout(split, holdout)
    user_indices = np.asarray(sorted(holdout_items), dtype=np.int64)
    if len(user_indices) == 0:
        raise EvaluationError(f"the {holdout!r} holdout contains no users")

    hits = {k: np.zeros(len(user_indices), dtype=np.int64) for k in ks}
    first_ranks = np.zeros(len(user_indices), dtype=np.int64)
    test_sizes = np.zeros(len(user_indices), dtype=np.int64)

    with start_span(
        tracer, "eval.evaluate",
        model=model.name, holdout=holdout, users=len(user_indices),
        rank_method=rank_method,
    ):
        for start in range(0, len(user_indices), chunk_size):
            chunk = user_indices[start:start + chunk_size]
            with start_span(
                tracer, "eval.chunk", start=start, users=len(chunk)
            ):
                scores = model.masked_scores(chunk)
                held_lists = [holdout_items[int(user)] for user in chunk]
                if rank_method == "count":
                    counts = np.asarray(
                        [len(held) for held in held_lists], dtype=np.int64
                    )
                    item_ranks = _ranks_by_counting(scores, held_lists)
                    group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                    stop = start + len(chunk)
                    test_sizes[start:stop] = counts
                    first_ranks[start:stop] = np.minimum.reduceat(
                        item_ranks, group_starts
                    )
                    for k in ks:
                        hits[k][start:stop] = np.add.reduceat(
                            (item_ranks <= k).astype(np.int64), group_starts
                        )
                    continue
                # Reference path: rank_of[j] = 1-based rank of item j in
                # this user's full ranking.
                order = np.argsort(-scores, axis=1, kind="stable")
                ranks = np.empty_like(order)
                row_index = np.arange(order.shape[0])[:, None]
                ranks[row_index, order] = np.arange(1, order.shape[1] + 1)
                for offset, held_out in enumerate(held_lists):
                    item_ranks = ranks[offset, held_out]
                    position = start + offset
                    test_sizes[position] = len(held_out)
                    first_ranks[position] = item_ranks.min()
                    for k in ks:
                        hits[k][position] = int((item_ranks <= k).sum())

    kpis = {
        k: compute_kpis(hits[k], test_sizes, first_ranks, k) for k in ks
    }
    if metrics is not None:
        _record_kpi_gauges(metrics, model.name, kpis, len(user_indices))
    per_user = PerUserOutcome(
        user_indices=user_indices,
        train_sizes=split.train_sizes(user_indices),
        test_sizes=test_sizes,
        hits=hits,
        first_ranks=first_ranks,
    )
    latency = None
    if measure_latency:
        latency = measure_recommendation_latency(model, user_indices, k=max(ks))
    return EvaluationResult(
        model_name=model.name,
        kpis=kpis,
        per_user=per_user,
        recommend_seconds_per_user=latency,
    )


def _record_kpi_gauges(
    metrics: MetricsRegistry,
    model_name: str,
    kpis: dict[int, KPIReport],
    n_users: int,
) -> None:
    """Land every KPI in a gauge labelled by model and k."""
    metrics.gauge("eval.users").labels(model=model_name).set(float(n_users))
    for k, report in kpis.items():
        labels = {"model": model_name, "k": str(k)}
        metrics.gauge("eval.urr").labels(**labels).set(report.urr)
        metrics.gauge("eval.nrr").labels(**labels).set(report.nrr)
        metrics.gauge("eval.precision").labels(**labels).set(report.precision)
        metrics.gauge("eval.recall").labels(**labels).set(report.recall)
        metrics.gauge("eval.first_rank").labels(**labels).set(report.first_rank)


def _ranks_by_counting(
    scores: np.ndarray, held_lists: list[np.ndarray]
) -> np.ndarray:
    """1-based full-ranking ranks of each user's held-out items, without
    computing any full argsort ranking.

    The rank of a held-out item under a stable decreasing sort is
    ``1 + |{i : s_i > s_col}| + |{i < col : s_i == s_col}|``: items with a
    strictly greater score always precede it, and tied items precede it
    exactly when their index is smaller (stable ties break by item index).
    The strictly-greater count comes from one value sort per row plus two
    binary searches per held-out item — an order of magnitude cheaper than
    the stable argsort + rank scatter it replaces — and the positional tie
    correction is only scanned for targets that actually have ties.

    Returns the ranks flattened in ``held_lists`` order.
    """
    n_items = scores.shape[1]
    sorted_scores = np.sort(scores, axis=1)
    counts = [len(held) for held in held_lists]
    ranks = np.empty(sum(counts), dtype=np.int64)
    position = 0
    for row, held in enumerate(held_lists):
        stop = position + counts[row]
        targets = scores[row, held]
        row_sorted = sorted_scores[row]
        right = np.searchsorted(row_sorted, targets, side="right")
        ranks[position:stop] = 1 + (n_items - right)
        left = np.searchsorted(row_sorted, targets, side="left")
        for i in np.flatnonzero(right - left > 1):
            ranks[position + i] += np.count_nonzero(
                scores[row, :held[i]] == targets[i]
            )
        position = stop
    return ranks


def measure_recommendation_latency(
    model: Recommender,
    user_indices: np.ndarray,
    k: int,
    sample: int = LATENCY_SAMPLE_USERS,
) -> float:
    """Average seconds per single-user recommendation request (Table 2)."""
    targets = np.asarray(user_indices, dtype=np.int64)[:sample]
    if len(targets) == 0:
        raise EvaluationError("latency measurement needs at least one user")
    started = time.perf_counter()
    for user_index in targets:
        model.recommend(int(user_index), k)
    return (time.perf_counter() - started) / len(targets)


def _select_holdout(split: DatasetSplit, holdout: str) -> dict[int, np.ndarray]:
    if holdout == "test":
        return split.test_items
    if holdout == "val":
        bct = set(int(u) for u in split.bct_user_indices)
        return {
            user: items
            for user, items in split.val_items.items()
            if user in bct
        }
    raise EvaluationError(f"holdout must be 'test' or 'val', got {holdout!r}")

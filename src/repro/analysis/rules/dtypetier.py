"""``dtype-tier`` — no silent float64 promotion on float32 hot paths.

The fast BPR kernel tier (``docs/determinism.md``) is float32 end to
end: one silently-promoted operand turns every downstream product into
float64, doubling memory traffic and quietly changing the tier's
numerics. Hot-path functions declare their tier with an annotation
pragma on the ``def`` line::

    def train_batch_fast(...):  # repro: tier[float32]

Inside an annotated function the rule flags:

- ``np.add.at`` — the buffered ufunc scatter the fast tier exists to
  avoid (use the ``np.bincount`` segment-sum, ``scatter_add``);
- explicit float64 requests — ``dtype=np.float64``, ``.astype(
  np.float64)``, ``np.float64(...)`` casts;
- float64-defaulting constructors (``np.zeros``/``ones``/``empty``/
  ``full``) called without a ``dtype=``;
- ``np.bincount`` results used without a ``.astype(...)`` adaptation
  (bincount always accumulates float64);
- locals of inferred float64 provenance (true division, un-dtyped
  constructors) flowing into ``einsum``/``dot``/``matmul``/``@`` or
  into another tier-annotated function without an intervening
  ``.astype`` at the tier boundary.

Unknown dtypes (parameters, unresolved calls) never flag.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.dataflow import (
    WitnessStep,
    body_statements,
    dotted_parts,
    get_dataflow,
    parent_map,
    tier_annotation,
)
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, SourceFile
from repro.analysis.rules.base import Rule

#: Constructors that default to float64 when ``dtype`` is omitted.
FLOAT64_CONSTRUCTORS = {
    "numpy.zeros": 2,
    "numpy.ones": 2,
    "numpy.empty": 2,
    "numpy.full": 3,
}

#: Calls whose operands promote the whole product on dtype mismatch.
PRODUCT_CALLS = {
    "numpy.einsum",
    "numpy.dot",
    "numpy.matmul",
    "numpy.inner",
    "numpy.tensordot",
}

#: Calls that propagate their array argument's dtype unchanged.
DTYPE_PRESERVING = {
    "numpy.maximum",
    "numpy.minimum",
    "numpy.log1p",
    "numpy.log",
    "numpy.exp",
    "numpy.abs",
    "numpy.where",
    "numpy.concatenate",
    "numpy.repeat",
    "numpy.clip",
}


class DtypeTierRule(Rule):
    """Keep ``# repro: tier[float32]`` functions promotion-free."""

    rule_id = "dtype-tier"
    description = (
        "no float64 promotion (add.at, bare constructors, unadapted "
        "bincount, f64 einsum operands) inside tier[float32] functions"
    )
    version = 1

    def check_file(
        self, source: SourceFile, model: ProjectModel
    ) -> Iterable[Finding]:
        """Findings in this file's ``tier[float32]``-annotated functions."""
        df = get_dataflow(model)
        tiered = {
            canonical
            for canonical, fi in df.functions.items()
            if fi.source is source
            and tier_annotation(source, fi.node) == "float32"
        }
        for canonical in sorted(tiered):
            fi = df.functions[canonical]
            yield from self._check_function(df, source, fi)

    def _check_function(self, df, source: SourceFile, fi):
        parents = parent_map(fi.node)
        env = df.function_env(fi)
        dtypes = self._dtype_env(df, fi, env)
        annotated_peers = {
            canonical
            for canonical, other in df.functions.items()
            if tier_annotation(other.source, other.node) == "float32"
        }
        for stmt in body_statements(fi.node):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield from self._check_call(
                        df, source, fi, node, env, dtypes, parents,
                        annotated_peers,
                    )
                elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, ast.MatMult
                ):
                    for operand in (node.left, node.right):
                        yield from self._flag_f64_operand(
                            source, fi, operand, dtypes, node.lineno, "@"
                        )

    def _check_call(
        self, df, source, fi, call, env, dtypes, parents, annotated_peers
    ):
        targets = df.call_targets(fi, call, env)
        parts = dotted_parts(call.func)
        relpath = source.relpath

        if "numpy.add.at" in targets:
            yield self.finding(
                relpath,
                call.lineno,
                "np.add.at on a tier[float32] hot path — use the "
                f"bincount segment-sum instead (in {fi.qualname})",
            )

        for keyword in call.keywords:
            if keyword.arg == "dtype" and _is_float64(keyword.value):
                yield self.finding(
                    relpath,
                    call.lineno,
                    "explicit float64 dtype inside tier[float32] code "
                    f"(in {fi.qualname})",
                )

        for target in targets:
            arity = FLOAT64_CONSTRUCTORS.get(target)
            if arity is None:
                continue
            has_dtype = any(k.arg == "dtype" for k in call.keywords)
            if not has_dtype and len(call.args) < arity:
                yield self.finding(
                    relpath,
                    call.lineno,
                    f"{target.rsplit('.', 1)[-1]}() without dtype= "
                    "defaults to float64 inside tier[float32] code "
                    f"(in {fi.qualname})",
                )

        if (
            parts is not None
            and parts[-1] == "astype"
            and call.args
            and _is_float64(call.args[0])
        ):
            yield self.finding(
                relpath,
                call.lineno,
                ".astype(float64) upcast inside tier[float32] code "
                f"(in {fi.qualname})",
            )

        if "numpy.float64" in targets:
            yield self.finding(
                relpath,
                call.lineno,
                "np.float64(...) cast inside tier[float32] code "
                f"(in {fi.qualname})",
            )

        if "numpy.bincount" in targets:
            parent = parents.get(id(call))
            adapted = (
                isinstance(parent, ast.Attribute)
                and parent.attr == "astype"
            )
            if not adapted:
                yield self.finding(
                    relpath,
                    call.lineno,
                    "np.bincount accumulates in float64; adapt the "
                    "result with .astype(target.dtype) inside "
                    f"tier[float32] code (in {fi.qualname})",
                )

        boundary = None
        if any(t in PRODUCT_CALLS for t in targets):
            boundary = next(t for t in targets if t in PRODUCT_CALLS)
        elif any(t in annotated_peers for t in targets):
            boundary = next(t for t in targets if t in annotated_peers)
        if boundary is not None:
            for arg in call.args:
                yield from self._flag_f64_operand(
                    source, fi, arg, dtypes, call.lineno,
                    boundary.rsplit(".", 1)[-1],
                )

    def _flag_f64_operand(
        self, source, fi, operand, dtypes, line, sink
    ):
        name = operand
        if isinstance(name, ast.Starred):
            name = name.value
        if not isinstance(name, ast.Name):
            return
        info = dtypes.get(name.id)
        if info is None or info[0] != "float64":
            return
        origin_line = info[1]
        yield self.finding(
            source.relpath,
            line,
            f"float64 operand `{name.id}` flows into {sink}() without "
            ".astype(np.float32) at the tier boundary "
            f"(in {fi.qualname})",
            witness=(
                WitnessStep(
                    source.relpath,
                    origin_line,
                    f"`{name.id}` becomes float64 here",
                ),
                WitnessStep(
                    source.relpath,
                    line,
                    f"`{name.id}` reaches {sink}() unadapted",
                ),
            ),
        )

    # ------------------------------------------------------------------

    def _dtype_env(self, df, fi, env) -> dict[str, tuple[str, int]]:
        """``name -> (dtype, origin line)`` over the function body.

        Tracks only what is provable: ``float64`` from true division and
        un-dtyped constructors, ``float32``/adapted from explicit
        ``dtype=np.float32`` or ``.astype(...)``. Everything else is
        absent (unknown).
        """
        dtypes: dict[str, tuple[str, int]] = {}
        for stmt in body_statements(fi.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                inferred = self._expr_dtype(df, fi, stmt.value, dtypes, env)
                if inferred is not None:
                    dtypes[target.id] = (inferred, stmt.lineno)
        return dtypes

    def _expr_dtype(self, df, fi, expr, dtypes, env) -> str | None:
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return "float64"
            left = self._expr_dtype(df, fi, expr.left, dtypes, env)
            right = self._expr_dtype(df, fi, expr.right, dtypes, env)
            if "float64" in (left, right):
                return "float64"
            return left or right
        if isinstance(expr, ast.Name):
            info = dtypes.get(expr.id)
            return info[0] if info else None
        if isinstance(expr, ast.Call):
            parts = dotted_parts(expr.func)
            if parts is not None and parts[-1] == "astype":
                if expr.args and _is_float64(expr.args[0]):
                    return "float64"
                return "adapted"
            targets = df.call_targets(fi, expr, env)
            for keyword in expr.keywords:
                if keyword.arg == "dtype":
                    return (
                        "float64" if _is_float64(keyword.value) else "adapted"
                    )
            if any(t in FLOAT64_CONSTRUCTORS for t in targets):
                return "float64"
            if any(t in DTYPE_PRESERVING for t in targets):
                for arg in expr.args:
                    inner = self._expr_dtype(df, fi, arg, dtypes, env)
                    if inner is not None:
                        return inner
            return None
        return None


def _is_float64(node: ast.expr) -> bool:
    """Whether an expression names the float64 dtype."""
    parts = dotted_parts(node)
    if parts is not None:
        return parts[-1] in {"float64", "double"} or parts == ["float"]
    return isinstance(node, ast.Constant) and node.value in (
        "float64",
        "double",
    )

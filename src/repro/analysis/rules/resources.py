"""``resource-lifetime`` — handles must be scoped, writes must be atomic.

Serving keeps ``np.load(..., mmap_mode="r")`` memmaps and open file
handles alive across requests; persistence writes artefacts that crash
tests expect to be all-or-nothing. Two lifetime contracts follow:

- **acquisition**: every ``np.load``/``open``/``mmap.mmap`` result must
  be context-managed (``with``), explicitly ``.close()``d in the same
  function, returned (ownership transfer), handed to another call
  (ownership unknowable — degrades silently), or registered on ``self``
  of a class that exposes ``close()``/``__exit__`` so *some* owner can
  release it. Anonymous ``mmap.mmap(-1, ...)`` buffers are exempt —
  they are reclaimed with the array by the GC (see ``shared_empty``);
- **writes**: artefacts reach disk only through
  :func:`repro.resilience.artefacts.atomic_write` (or wrappers like
  ``write_npz_columns`` that use it). Direct ``Path.write_text`` /
  ``write_bytes``, write-mode ``open``, and ``np.save*`` onto a bare
  path bypass the temp-file + fsync + rename sequence and can leave a
  torn artefact after a crash.

The artefacts module itself is the sanctioned implementation and is
exempt from the write checks.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.dataflow import (
    FunctionInfo,
    WitnessStep,
    body_statements,
    dotted_parts,
    get_dataflow,
    parent_map,
)
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, SourceFile
from repro.analysis.rules.base import Rule

#: The module implementing the sanctioned write path.
ARTEFACTS_MODULE = "repro.resilience.artefacts"

#: Modules that ARE the sanctioned write implementations — exempt from
#: the write checks (the stdlib-only clone exists so the analyzer stays
#: importable without numpy; see ``repro.analysis._io``).
SANCTIONED_WRITE_MODULES = {ARTEFACTS_MODULE, "repro.analysis._io"}

#: Canonical calls producing handles that need a lifetime owner.
HANDLE_PRODUCERS = {
    "numpy.load": "np.load archive/memmap",
    "open": "file handle",
    "gzip.open": "file handle",
    "bz2.open": "file handle",
    "lzma.open": "file handle",
    "mmap.mmap": "mmap buffer",
}

#: Canonical savers whose destination must be an atomic_write handle.
RAW_SAVERS = {"numpy.save", "numpy.savez", "numpy.savez_compressed"}

#: The atomic write context managers' canonical names.
ATOMIC_WRITES = {
    f"{module}.atomic_write" for module in SANCTIONED_WRITE_MODULES
}


class ResourceLifetimeRule(Rule):
    """Context-manage handles; route artefact writes via atomic_write."""

    rule_id = "resource-lifetime"
    description = (
        "np.load/open/mmap results need a with-block, .close(), or a "
        "close()-exposing owner; writes must flow through atomic_write"
    )
    version = 1

    def check_file(
        self, source: SourceFile, model: ProjectModel
    ) -> Iterable[Finding]:
        """Handle-lifetime and write-path findings in this file."""
        df = get_dataflow(model)
        for fi in df.functions.values():
            if fi.source is not source:
                continue
            yield from self._check_function(df, source, fi)

    def _check_function(self, df, source: SourceFile, fi: FunctionInfo):
        parents = parent_map(fi.node)
        env = df.function_env(fi)
        closed = _closed_names(fi)
        returned = _returned_names(fi)
        passed = _names_passed_to_calls(fi)
        for stmt in body_statements(fi.node):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                targets = df.call_targets(fi, node, env)
                parts = dotted_parts(node.func)
                yield from self._check_handle(
                    df, source, fi, node, targets, parts, parents,
                    closed, returned, passed,
                )
                if fi.module not in SANCTIONED_WRITE_MODULES:
                    yield from self._check_write(
                        df, source, fi, node, targets, parts, env
                    )

    # ------------------------------------------------------------------
    # handle lifetimes
    # ------------------------------------------------------------------

    def _check_handle(
        self,
        df,
        source: SourceFile,
        fi: FunctionInfo,
        call: ast.Call,
        targets: tuple[str, ...],
        parts: list[str] | None,
        parents,
        closed: set[str],
        returned: set[str],
        passed: set[str],
    ):
        kind = None
        for target in targets:
            if target in HANDLE_PRODUCERS:
                kind = HANDLE_PRODUCERS[target]
                break
        # ``path.open(...)`` — a bound method, not resolvable by name.
        if kind is None and parts is not None and parts[-1] == "open":
            if targets and targets[0] == "os.open":
                return
            if len(parts) > 1:
                kind = "file handle"
        if kind is None:
            return
        if kind == "mmap buffer" and _is_anonymous_mmap(call):
            return
        parent = parents.get(id(call))
        if isinstance(parent, ast.withitem):
            return
        binding = _binding_target(parent, parents, call)
        if binding is None:
            yield self.finding(
                source.relpath,
                call.lineno,
                f"{kind} is neither context-managed nor bound to an "
                f"owner — it leaks when this scope unwinds "
                f"(in {fi.qualname})",
                witness=(
                    WitnessStep(
                        source.relpath,
                        call.lineno,
                        f"{kind} acquired here without an owner",
                    ),
                ),
            )
            return
        if isinstance(binding, ast.Name):
            name = binding.id
            if name in closed or name in returned or name in passed:
                return
            yield self.finding(
                source.relpath,
                call.lineno,
                f"{kind} bound to `{name}` is never closed, returned, "
                "or handed off — use a with-block or call .close() "
                f"(in {fi.qualname})",
                witness=(
                    WitnessStep(
                        source.relpath,
                        call.lineno,
                        f"{kind} bound to `{name}` here",
                    ),
                    WitnessStep(
                        source.relpath,
                        fi.node.lineno,
                        f"no close()/return/hand-off of `{name}` in "
                        f"{fi.qualname}()",
                    ),
                ),
            )
            return
        # Stored on self (attribute or a self-owned container): the
        # owning class must expose close() or __exit__.
        owner_attr = _self_store_attr(binding)
        if owner_attr is not None and fi.class_key is not None:
            if self._class_can_close(df, fi.class_key):
                return
            yield self.finding(
                source.relpath,
                call.lineno,
                f"{kind} stored on self.{owner_attr}, but "
                f"{fi.class_key.rsplit('.', 1)[-1]} exposes no close() "
                "to release it (in "
                f"{fi.qualname})",
                witness=(
                    WitnessStep(
                        source.relpath,
                        call.lineno,
                        f"{kind} registered on self.{owner_attr}",
                    ),
                    WitnessStep(
                        source.relpath,
                        fi.node.lineno,
                        "owning class has no close()/__exit__",
                    ),
                ),
            )

    def _class_can_close(self, df, class_key: str) -> bool:
        return any(
            df.resolve_method(class_key, name) is not None
            for name in ("close", "__exit__")
        )

    # ------------------------------------------------------------------
    # atomic writes
    # ------------------------------------------------------------------

    def _check_write(
        self,
        df,
        source: SourceFile,
        fi: FunctionInfo,
        call: ast.Call,
        targets: tuple[str, ...],
        parts: list[str] | None,
        env,
    ):
        if parts is not None and parts[-1] in {"write_text", "write_bytes"}:
            yield self.finding(
                source.relpath,
                call.lineno,
                f".{parts[-1]}() writes the artefact in place; route it "
                "through repro.resilience.artefacts.atomic_write "
                f"(temp + fsync + rename) (in {fi.qualname})",
                witness=(
                    WitnessStep(
                        source.relpath,
                        call.lineno,
                        f"in-place .{parts[-1]}() in {fi.qualname}()",
                    ),
                ),
            )
            return
        if parts is not None and parts[-1] == "open":
            if targets and targets[0] == "os.open":
                return
            mode = _open_mode(call)
            if mode is not None and any(c in mode for c in "wax"):
                yield self.finding(
                    source.relpath,
                    call.lineno,
                    f"write-mode open({mode!r}) bypasses atomic_write; "
                    "a crash mid-write leaves a torn artefact "
                    f"(in {fi.qualname})",
                    witness=(
                        WitnessStep(
                            source.relpath,
                            call.lineno,
                            f"open({mode!r}) in {fi.qualname}()",
                        ),
                    ),
                )
            return
        for target in targets:
            if target not in RAW_SAVERS:
                continue
            if not call.args:
                return
            destination = call.args[0]
            prov = df.expr_prov(fi, destination, env)
            if prov.origin in {f"call:{name}" for name in ATOMIC_WRITES}:
                return
            if prov.origin.startswith(("param:", "attr:")):
                return  # could be a managed handle: degrade
            if prov.origin == "unknown":
                return
            if prov.origin.startswith("call:"):
                return  # handle produced by some call: degrade
            yield self.finding(
                source.relpath,
                call.lineno,
                f"{target.rsplit('.', 1)[-1]}() onto a bare path "
                "bypasses atomic_write (in "
                f"{fi.qualname})",
                witness=(
                    *prov.trail,
                    WitnessStep(
                        source.relpath,
                        call.lineno,
                        f"unmanaged destination reaches {target}()",
                    ),
                ),
            )
            return


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _is_anonymous_mmap(call: ast.Call) -> bool:
    if not call.args:
        return False
    first = call.args[0]
    if isinstance(first, ast.UnaryOp) and isinstance(first.op, ast.USub):
        first = first.operand
        return isinstance(first, ast.Constant) and first.value == 1
    return isinstance(first, ast.Constant) and first.value == -1


def _binding_target(
    parent: ast.AST | None, parents, call: ast.Call
) -> ast.expr | None:
    """The assignment target the call's value lands in, if any."""
    node: ast.AST | None = call
    while parent is not None:
        if isinstance(parent, ast.Assign) and parent.value is node:
            if len(parent.targets) == 1:
                return parent.targets[0]
            return None
        if isinstance(parent, ast.AnnAssign) and parent.value is node:
            return parent.target
        if isinstance(parent, (ast.Call, ast.Return, ast.Starred)):
            # The handle is consumed by another expression; ownership
            # transfers there — degrade.
            return parent if isinstance(parent, ast.expr) else parent  # type: ignore[return-value]
        node = parent
        parent = parents.get(id(parent))
    return None


def _self_store_attr(binding: ast.expr) -> str | None:
    """``self.attr`` or ``self.attr[...]`` target -> ``attr``."""
    node = binding
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _closed_names(fi: FunctionInfo) -> set[str]:
    out: set[str] = set()
    for stmt in body_statements(fi.node):
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close"
                and isinstance(node.func.value, ast.Name)
            ):
                out.add(node.func.value.id)
    return out


def _returned_names(fi: FunctionInfo) -> set[str]:
    out: set[str] = set()
    for stmt in body_statements(fi.node):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Name):
                    out.add(node.id)
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            value = stmt.value.value
            if value is not None:
                for node in ast.walk(value):
                    if isinstance(node, ast.Name):
                        out.add(node.id)
    return out


def _names_passed_to_calls(fi: FunctionInfo) -> set[str]:
    """Names handed to other calls (ownership unknowable — degrade)."""
    out: set[str] = set()
    for stmt in body_statements(fi.node):
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            for arg in (*node.args, *(k.value for k in node.keywords)):
                target = arg
                if isinstance(target, ast.Starred):
                    target = target.value
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


def _open_mode(call: ast.Call) -> str | None:
    """The constant mode string of an ``open`` call, if present."""
    parts = dotted_parts(call.func)
    mode_index = 1
    if parts is not None and len(parts) > 1:
        mode_index = 0  # bound ``path.open(mode)``
    for keyword in call.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            return value.value if isinstance(value, ast.Constant) else None
    if len(call.args) > mode_index:
        value = call.args[mode_index]
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
    return None

"""Determinism rule: all randomness and wall-clock reads are seeded.

The reproduction's headline guarantee — KPIs bit-identical across
serial, thread, and process backends — requires every stochastic
component to draw from the seeded streams in :mod:`repro.rng` and every
behavioural code path to avoid ambient wall-clock time. This rule bans,
statically:

- ``np.random.seed`` / ``np.random.RandomState`` — legacy global-state
  numpy randomness (a process-wide seed is exactly the hidden coupling
  :func:`repro.rng.derive_rng` exists to prevent);
- unseeded ``default_rng()`` calls outside :mod:`repro.rng` — an
  OS-entropy generator silently breaks replay;
- the stdlib :mod:`random` module — unseeded and not stream-splittable;
- ``time.time()`` / ``time.time_ns()`` and ``datetime.now()`` /
  ``utcnow()`` / ``date.today()`` — wall-clock reads that leak real time
  into behaviour. Monotonic *perf timers* (``time.perf_counter``,
  ``time.monotonic``, ``time.process_time``, ``time.sleep``) are
  allowlisted: they may shape measured durations but never ranked
  output.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, SourceFile
from repro.analysis.rules.base import Rule

#: Modules allowed to call ``default_rng`` without a seed (the seed
#: helpers themselves).
DEFAULT_EXEMPT_MODULES = frozenset({"repro.rng"})

#: ``time`` attributes that read the wall clock (banned).
_WALL_CLOCK_TIME = {"time", "time_ns"}

#: ``datetime``/``date`` constructors that read the wall clock (banned).
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today", "utcnow_ns"}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DeterminismRule(Rule):
    """Flag unseeded randomness and wall-clock reads."""

    rule_id = "determinism"
    description = (
        "no global numpy seeding, unseeded default_rng, stdlib random, "
        "or wall-clock reads in library code"
    )

    def __init__(
        self, exempt_modules: Iterable[str] = DEFAULT_EXEMPT_MODULES
    ) -> None:
        self.exempt_modules = frozenset(exempt_modules)

    def check_file(
        self, source: SourceFile, model: ProjectModel
    ) -> Iterable[Finding]:
        """Flag banned randomness/clock imports and calls in one file."""
        exempt = source.module in self.exempt_modules
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(source, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(source, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(source, node, exempt)

    def _check_import(
        self, source: SourceFile, node: ast.Import
    ) -> Iterable[Finding]:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield self.finding(
                    source.relpath,
                    node.lineno,
                    "stdlib 'random' is process-global and unseeded here; "
                    "draw from repro.rng (derive_rng/make_rng) instead",
                )

    def _check_import_from(
        self, source: SourceFile, node: ast.ImportFrom
    ) -> Iterable[Finding]:
        if node.module == "random":
            yield self.finding(
                source.relpath,
                node.lineno,
                "stdlib 'random' is process-global and unseeded here; "
                "draw from repro.rng (derive_rng/make_rng) instead",
            )
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME:
                    yield self.finding(
                        source.relpath,
                        node.lineno,
                        f"'from time import {alias.name}' reads the wall "
                        "clock; use time.perf_counter/time.monotonic for "
                        "timing, or an injectable clock for behaviour",
                    )
        elif node.module in ("numpy.random", "np.random"):
            for alias in node.names:
                if alias.name in ("seed", "RandomState"):
                    yield self.finding(
                        source.relpath,
                        node.lineno,
                        f"numpy.random.{alias.name} is legacy global-state "
                        "randomness; thread a seeded Generator from "
                        "repro.rng instead",
                    )

    def _check_call(
        self, source: SourceFile, node: ast.Call, exempt: bool
    ) -> Iterable[Finding]:
        name = _dotted(node.func)
        if name is None:
            return
        parts = name.split(".")
        if parts[-2:] == ["random", "seed"]:
            yield self.finding(
                source.relpath,
                node.lineno,
                f"{name}() seeds process-global numpy state; thread a "
                "seeded Generator from repro.rng instead",
            )
        elif parts[-1] == "RandomState" and "random" in parts:
            yield self.finding(
                source.relpath,
                node.lineno,
                f"{name} is legacy global-state numpy randomness; use "
                "repro.rng.make_rng/derive_rng",
            )
        elif parts[-1] == "default_rng" and not node.args and not node.keywords:
            if not exempt:
                yield self.finding(
                    source.relpath,
                    node.lineno,
                    "default_rng() without a seed draws OS entropy and "
                    "breaks replay; pass a seed (repro.rng semantics)",
                )
        elif name in ("time.time", "time.time_ns"):
            yield self.finding(
                source.relpath,
                node.lineno,
                f"{name}() reads the wall clock; use time.perf_counter/"
                "time.monotonic for timing, or an injectable clock for "
                "behaviour",
            )
        elif parts[-1] in _WALL_CLOCK_DATETIME and (
            "datetime" in parts[:-1] or "date" in parts[:-1]
        ):
            yield self.finding(
                source.relpath,
                node.lineno,
                f"{name}() reads the wall clock; inject a clock or pass "
                "timestamps explicitly",
            )

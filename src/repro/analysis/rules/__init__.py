"""The built-in rule catalogue.

:func:`default_rules` instantiates one of each shipped rule; the runner
(and ``python -m repro check --rule``) filters by
:attr:`~repro.analysis.rules.base.Rule.rule_id`. Adding a rule means
subclassing :class:`~repro.analysis.rules.base.Rule`, giving it a stable
id, and listing it here — see ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.docs import DocstringRule, LinkRule
from repro.analysis.rules.exceptions import ExceptionHygieneRule
from repro.analysis.rules.layering import LayeringRule, LayerSpec
from repro.analysis.rules.locks import LockDisciplineRule

__all__ = [
    "Rule",
    "DeterminismRule",
    "LayeringRule",
    "LayerSpec",
    "LockDisciplineRule",
    "ExceptionHygieneRule",
    "DocstringRule",
    "LinkRule",
    "default_rules",
]


def default_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, in report order."""
    return [
        DeterminismRule(),
        LayeringRule(),
        LockDisciplineRule(),
        ExceptionHygieneRule(),
        DocstringRule(),
        LinkRule(),
    ]

"""The built-in rule catalogue.

:func:`default_rules` instantiates one of each shipped rule; the runner
(and ``python -m repro check --rule``) filters by
:attr:`~repro.analysis.rules.base.Rule.rule_id`. Adding a rule means
subclassing :class:`~repro.analysis.rules.base.Rule`, giving it a stable
id, and listing it here — see ``docs/static-analysis.md``.

The PR-5 rules are syntactic per-file checks; the PR-10 rules
(``seed-lineage``, ``dtype-tier``, ``lock-order``,
``resource-lifetime``) run on the interprocedural
:mod:`~repro.analysis.dataflow` layer and attach witness paths to their
findings (``repro check --explain``).
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.docs import DocstringRule, LinkRule
from repro.analysis.rules.dtypetier import DtypeTierRule
from repro.analysis.rules.exceptions import ExceptionHygieneRule
from repro.analysis.rules.layering import LayeringRule, LayerSpec
from repro.analysis.rules.lockorder import LockOrderRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.resources import ResourceLifetimeRule
from repro.analysis.rules.seedlineage import SeedLineageRule

__all__ = [
    "Rule",
    "DeterminismRule",
    "LayeringRule",
    "LayerSpec",
    "LockDisciplineRule",
    "LockOrderRule",
    "SeedLineageRule",
    "DtypeTierRule",
    "ResourceLifetimeRule",
    "ExceptionHygieneRule",
    "DocstringRule",
    "LinkRule",
    "default_rules",
]


def default_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, in report order."""
    return [
        DeterminismRule(),
        LayeringRule(),
        LockDisciplineRule(),
        SeedLineageRule(),
        DtypeTierRule(),
        LockOrderRule(),
        ResourceLifetimeRule(),
        ExceptionHygieneRule(),
        DocstringRule(),
        LinkRule(),
    ]

"""Docs-integrity rules: docstring coverage and intra-repo link checks.

These used to be the standalone gates ``scripts/check_docstrings.py``
and ``scripts/check_links.py``; the logic now lives here so every
repository invariant shares one runner, one suppression syntax, and one
output format. The scripts remain as thin shims re-exporting this
module's functions with their original CLIs and exit codes, so CI and
``tests/test_doc_checks.py`` are untouched.

Two rules:

- :class:`DocstringRule` (``docstrings``) — every module, public class,
  and public function/method in the gated packages
  (:data:`CHECKED_PACKAGES`) must carry a docstring. ``__init__`` and
  friends are exempt (the class docstring documents construction);
- :class:`LinkRule` (``links``) — every relative markdown link under the
  project root must resolve to an existing file or directory. External
  targets and pure in-page anchors are ignored.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, SourceFile
from repro.analysis.rules.base import Rule

#: Packages (as ``src/``-relative path fragments) whose public API must
#: be documented.
CHECKED_PACKAGES = (
    "repro/parallel",
    "repro/obs",
    "repro/resilience",
    "repro/analysis",
    "repro/retrieval",
)

#: ``[text](target)`` — target captured lazily so nested parens in text
#: don't confuse the scan; images (``![alt](...)``) match too, which is
#: intended.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Directories never scanned for markdown sources.
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules"}

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


# ----------------------------------------------------------------------
# docstring coverage (the former scripts/check_docstrings.py core)
# ----------------------------------------------------------------------


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _missing_in_scope(
    node: ast.AST, scope: str, public_scope: bool
) -> list[tuple[int, str]]:
    """``(line, qualified name)`` for every undocumented public def."""
    missing: list[tuple[int, str]] = []
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not public_scope or not _is_public(child.name):
                continue
            qualified = f"{scope}{child.name}"
            if not _has_docstring(child):
                missing.append((child.lineno, f"function {qualified}"))
        elif isinstance(child, ast.ClassDef):
            class_public = public_scope and _is_public(child.name)
            qualified = f"{scope}{child.name}"
            if class_public and not _has_docstring(child):
                missing.append((child.lineno, f"class {qualified}"))
            missing.extend(
                _missing_in_scope(child, f"{qualified}.", class_public)
            )
    return missing


def missing_docstrings_in_tree(tree: ast.Module) -> list[tuple[int, str]]:
    """All undocumented public definitions in one parsed module."""
    missing = []
    if not _has_docstring(tree):
        missing.append((1, "module"))
    missing.extend(_missing_in_scope(tree, "", True))
    return missing


def missing_docstrings(path: Path) -> list[tuple[int, str]]:
    """All undocumented public definitions in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return missing_docstrings_in_tree(tree)


def check_packages(src_root: Path) -> list[str]:
    """Failure lines for every undocumented definition under the gate."""
    failures = []
    for package in CHECKED_PACKAGES:
        package_root = src_root / package
        if not package_root.is_dir():
            failures.append(f"{package}: package directory missing")
            continue
        for path in sorted(package_root.rglob("*.py")):
            for line, what in missing_docstrings(path):
                failures.append(
                    f"{path.relative_to(src_root)}:{line}: "
                    f"missing docstring on {what}"
                )
    return failures


# ----------------------------------------------------------------------
# markdown link integrity (the former scripts/check_links.py core)
# ----------------------------------------------------------------------


def markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping VCS/cache directories."""
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part in SKIP_DIRS for part in path.parts)
    )


def broken_links(path: Path, root: Path) -> list[tuple[int, str]]:
    """``(line number, target)`` for every unresolvable link in ``path``."""
    failures: list[tuple[int, str]] = []
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if relative.startswith("/"):
                resolved = root / relative.lstrip("/")
            else:
                resolved = path.parent / relative
            if not resolved.exists():
                failures.append((line_number, target))
    return failures


def check_tree(root: Path) -> list[str]:
    """Human-readable failure lines for every broken link under ``root``."""
    failures = []
    for path in markdown_files(root):
        for line_number, target in broken_links(path, root):
            failures.append(
                f"{path.relative_to(root)}:{line_number}: broken link -> "
                f"{target}"
            )
    return failures


# ----------------------------------------------------------------------
# the framework rules
# ----------------------------------------------------------------------


class DocstringRule(Rule):
    """Flag undocumented public API in the gated packages."""

    rule_id = "docstrings"
    description = (
        "public modules, classes, and functions of the growth-layer "
        "packages carry docstrings"
    )

    def __init__(
        self, packages: Iterable[str] = CHECKED_PACKAGES
    ) -> None:
        self.packages = tuple(packages)

    def _gated(self, source: SourceFile) -> bool:
        padded = "/" + source.relpath
        return any(
            f"/{package}/" in padded or padded.endswith(f"/{package}")
            for package in self.packages
        )

    def check_file(
        self, source: SourceFile, model: ProjectModel
    ) -> Iterable[Finding]:
        """Flag undocumented public definitions in a gated file."""
        if not self._gated(source):
            return
        for line, what in missing_docstrings_in_tree(source.tree):
            yield self.finding(
                source.relpath, line, f"missing docstring on {what}"
            )


class LinkRule(Rule):
    """Flag markdown links that do not resolve inside the repository."""

    rule_id = "links"
    description = "every intra-repo markdown link resolves to a real path"

    def check_project(self, model: ProjectModel) -> Iterable[Finding]:
        """Flag broken relative links in every markdown file under root."""
        root = model.root
        for path in markdown_files(root):
            for line, target in broken_links(path, root):
                yield self.finding(
                    path.relative_to(root).as_posix(),
                    line,
                    f"broken link -> {target}",
                )

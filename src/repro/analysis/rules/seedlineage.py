"""``seed-lineage`` — every generator must trace back to the seed tree.

The determinism contract (``docs/determinism.md``) hangs every random
draw off one root seed through :func:`repro.rng.derive_rng` (scoped
streams) and :func:`repro.parallel.pool.task_seeds` (parent-side worker
seeds). The PR-5 ``determinism`` rule catches the syntactic violations
(``np.random.seed``, unseeded ``default_rng``); this rule enforces the
*flow* half of the contract over the dataflow layer:

- generators must be created by ``repro.rng`` (``make_rng`` /
  ``derive_rng``) — a raw ``np.random.default_rng(...)`` anywhere else
  forks a parallel lineage that no scope tuple names;
- a generator reaching a stochastic call through parameters is traced
  interprocedurally to its creation; lineages that end at a raw
  constructor are flagged with the full call-chain witness;
- generators must not cross a :class:`~repro.parallel.pool.WorkerPool`
  task boundary (pass seeds, derive worker-side — generator state does
  not fork deterministically across processes);
- two call sites must not derive from the same constant scope tuple
  (identical streams masquerading as independent ones);
- seeds fed into ``derive_rng``/``make_rng``/``task_seeds`` must not
  come from process- or time-dependent values (``os.getpid``, ``hash``,
  ``time.*`` ...).

Unresolvable origins degrade to silence, never to a finding.
"""

from __future__ import annotations

from typing import Iterable

import ast

from repro.analysis.dataflow import (
    FunctionInfo,
    WitnessStep,
    body_statements,
    get_dataflow,
)
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.rules.base import Rule

#: Modules allowed to construct generators directly (the lineage root).
SANCTIONED_MODULES = {"repro.rng"}

#: Canonical constructors that start a *sanctioned* lineage.
SANCTIONED_ORIGINS = {
    "repro.rng.make_rng",
    "repro.rng.derive_rng",
}

#: Canonical constructors that start an *unsanctioned* lineage.
RAW_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
}

#: Generator methods that consume random state.
STOCHASTIC_METHODS = {
    "integers",
    "random",
    "choice",
    "shuffle",
    "permutation",
    "permuted",
    "normal",
    "standard_normal",
    "uniform",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "bytes",
}

#: Canonical call targets that hand tasks to worker processes.
POOL_BOUNDARIES = {
    "repro.parallel.pool.WorkerPool.map",
    "repro.parallel.pool.WorkerPool.starmap",
    "repro.parallel.pool.WorkerPool.map_seeded",
    "repro.parallel.pool.parallel_map",
}

#: Canonical seed sinks whose first argument must be config-derived.
SEED_SINKS = {
    "repro.rng.make_rng",
    "repro.rng.derive_rng",
    "repro.rng.spawn_seeds",
    "repro.parallel.pool.task_seeds",
}

#: Canonical origins that make a seed process- or time-dependent.
VOLATILE_ORIGINS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.perf_counter",
    "os.getpid",
    "uuid.uuid4",
    "id",
    "hash",
}


class SeedLineageRule(Rule):
    """Trace every generator back to ``derive_rng``/``task_seeds``."""

    rule_id = "seed-lineage"
    description = (
        "generators must descend from repro.rng and never cross worker "
        "boundaries; scope tuples must be unique"
    )
    version = 1

    def check_project(self, model: ProjectModel) -> Iterable[Finding]:
        """Seed-lineage findings over every function in the project."""
        df = get_dataflow(model)
        scope_sites: dict[tuple, list[tuple[FunctionInfo, ast.Call]]] = {}
        for fi in df.functions.values():
            env = df.function_env(fi)
            for call in _calls_of(fi):
                targets = df.call_targets(fi, call, env)
                yield from self._check_construction(fi, call, targets)
                yield from self._check_stochastic_use(df, fi, call, env)
                yield from self._check_pool_boundary(
                    df, fi, call, targets, env
                )
                yield from self._check_seed_source(
                    df, fi, call, targets, env
                )
                self._collect_scope(fi, call, targets, scope_sites)
        yield from self._check_scope_reuse(scope_sites)

    # ------------------------------------------------------------------

    def _check_construction(
        self, fi: FunctionInfo, call: ast.Call, targets: tuple[str, ...]
    ) -> Iterable[Finding]:
        if fi.module in SANCTIONED_MODULES:
            return
        for target in targets:
            if target in RAW_CONSTRUCTORS:
                yield self.finding(
                    fi.source.relpath,
                    call.lineno,
                    f"{target}() creates a generator outside the seed "
                    "lineage; use repro.rng.make_rng or derive_rng "
                    f"(in {fi.qualname})",
                    witness=(
                        WitnessStep(
                            fi.source.relpath,
                            call.lineno,
                            f"raw {target}() in {fi.qualname}()",
                        ),
                    ),
                )

    def _check_stochastic_use(
        self,
        df,
        fi: FunctionInfo,
        call: ast.Call,
        env,
    ) -> Iterable[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in STOCHASTIC_METHODS:
            return
        receiver = func.value
        prov = df.expr_prov(fi, receiver, env)
        origin = prov.origin
        owner = fi
        if origin.startswith("param:") and _is_self_attr(receiver):
            # The provenance came out of ``__init__``'s environment, so
            # the parameter belongs to the constructor, not this method.
            init = df.functions.get(f"{fi.class_key}.__init__")
            if init is not None:
                owner = init
        if origin.startswith("call:"):
            canonical = origin[5:]
            if (
                canonical in RAW_CONSTRUCTORS
                and fi.module not in SANCTIONED_MODULES
            ):
                # The construction finding already covers the creation
                # site in this function; no duplicate here.
                return
            return
        if not origin.startswith("param:"):
            return
        param = origin[6:]
        for traced, chain in df.trace_param(owner, param):
            if traced.origin.startswith("call:"):
                canonical = traced.origin[5:]
                if canonical in RAW_CONSTRUCTORS:
                    use = WitnessStep(
                        fi.source.relpath,
                        call.lineno,
                        f"generator consumed by .{func.attr}() in "
                        f"{fi.qualname}()",
                    )
                    yield self.finding(
                        fi.source.relpath,
                        call.lineno,
                        f"generator reaching .{func.attr}() traces back "
                        f"to raw {canonical}() instead of "
                        "repro.rng.derive_rng "
                        f"(in {fi.qualname})",
                        witness=(*chain, use),
                    )
                    return

    def _check_pool_boundary(
        self,
        df,
        fi: FunctionInfo,
        call: ast.Call,
        targets: tuple[str, ...],
        env,
    ) -> Iterable[Finding]:
        if not any(target in POOL_BOUNDARIES for target in targets):
            return
        boundary = next(t for t in targets if t in POOL_BOUNDARIES)
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            for name in ast.walk(arg):
                if not isinstance(name, ast.Name):
                    continue
                prov = env.get(name.id)
                if prov is None or not prov.origin.startswith("call:"):
                    continue
                canonical = prov.origin[5:]
                if (
                    canonical in RAW_CONSTRUCTORS
                    or canonical in SANCTIONED_ORIGINS
                ):
                    yield self.finding(
                        fi.source.relpath,
                        call.lineno,
                        f"generator `{name.id}` crosses the "
                        f"{boundary.rsplit('.', 1)[-1]}() task boundary; "
                        "pass task_seeds(...) and derive_rng worker-side "
                        f"(in {fi.qualname})",
                        witness=(
                            *prov.trail,
                            WitnessStep(
                                fi.source.relpath,
                                call.lineno,
                                f"`{name.id}` shipped to {boundary}()",
                            ),
                        ),
                    )
                    return

    def _check_seed_source(
        self,
        df,
        fi: FunctionInfo,
        call: ast.Call,
        targets: tuple[str, ...],
        env,
    ) -> Iterable[Finding]:
        if not any(target in SEED_SINKS for target in targets):
            return
        sink = next(t for t in targets if t in SEED_SINKS)
        if not call.args:
            return
        seed_arg = call.args[0]
        if isinstance(seed_arg, ast.Starred):
            return
        prov = df.expr_prov(fi, seed_arg, env)
        if prov.origin.startswith("call:"):
            canonical = prov.origin[5:]
            if canonical in VOLATILE_ORIGINS:
                yield self.finding(
                    fi.source.relpath,
                    call.lineno,
                    f"seed passed to {sink.rsplit('.', 1)[-1]}() derives "
                    f"from {canonical}() — not a config value, so runs "
                    f"are unreproducible (in {fi.qualname})",
                    witness=(
                        *prov.trail,
                        WitnessStep(
                            fi.source.relpath,
                            call.lineno,
                            f"volatile seed reaches {sink}()",
                        ),
                    ),
                )

    def _collect_scope(
        self,
        fi: FunctionInfo,
        call: ast.Call,
        targets: tuple[str, ...],
        scope_sites: dict,
    ) -> None:
        if "repro.rng.derive_rng" not in targets:
            return
        if len(call.args) < 2:
            return
        scope: list = []
        for arg in call.args[1:]:
            if not isinstance(arg, ast.Constant):
                return  # dynamic scope component: not comparable
            scope.append(arg.value)
        scope_sites.setdefault(tuple(scope), []).append((fi, call))

    def _check_scope_reuse(self, scope_sites: dict) -> Iterable[Finding]:
        for scope, sites in sorted(
            scope_sites.items(), key=lambda item: repr(item[0])
        ):
            if len(sites) < 2:
                continue
            # Distinct call sites only: one site called many times is
            # the normal per-task reuse pattern.
            locations = {
                (fi.source.relpath, call.lineno) for fi, call in sites
            }
            if len(locations) < 2:
                continue
            first_fi, first_call = sites[0]
            for fi, call in sites[1:]:
                if (fi.source.relpath, call.lineno) == (
                    first_fi.source.relpath,
                    first_call.lineno,
                ):
                    continue
                yield self.finding(
                    fi.source.relpath,
                    call.lineno,
                    f"derive_rng scope {scope!r} is already used at "
                    f"{first_fi.source.relpath}:{first_call.lineno} — "
                    "reused scopes yield identical streams "
                    f"(in {fi.qualname})",
                    witness=(
                        WitnessStep(
                            first_fi.source.relpath,
                            first_call.lineno,
                            f"scope {scope!r} first derived in "
                            f"{first_fi.qualname}()",
                        ),
                        WitnessStep(
                            fi.source.relpath,
                            call.lineno,
                            f"scope {scope!r} derived again in "
                            f"{fi.qualname}()",
                        ),
                    ),
                )


def _calls_of(fi: FunctionInfo):
    for stmt in body_statements(fi.node):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )

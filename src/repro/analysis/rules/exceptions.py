"""Exception-hygiene rule: no silently swallowed failures.

The resilience layer's contract is "degrade, don't fail" — but a broad
``except`` that neither re-raises, logs, nor counts the failure is not
degradation, it is amnesia: the fallback fires and nobody ever learns
the primary is down. This rule flags:

- bare ``except:`` — always (it also catches ``SystemExit`` and
  ``KeyboardInterrupt``);
- ``except Exception`` / ``except BaseException`` handlers whose body
  does none of: re-raise (any ``raise``), log (a call to a
  ``debug``/``info``/``warning``/``error``/``exception``/``critical``/
  ``log`` method), or account the failure in a metric (a call to an
  ``inc`` or ``observe`` method).

Intentional broad catches — the service fallback chain routes failures
into :meth:`ServiceStats.note_error` via helpers this rule cannot see
through — carry an inline ``# repro: allow[exceptions]`` pragma with the
justification on the handler line, replacing the old ``# noqa: BLE001``
convention.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, SourceFile
from repro.analysis.rules.base import Rule

#: Method names whose call counts as "the failure was logged".
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

#: Method names whose call counts as "the failure was counted".
METRIC_METHODS = frozenset({"inc", "observe"})

#: Exception names considered a broad catch.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _exception_names(node: ast.expr | None) -> Iterable[str]:
    if node is None:
        return
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name):
            yield element.id
        elif isinstance(element, ast.Attribute):
            yield element.attr


def _handler_mitigates(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name in LOG_METHODS or name in METRIC_METHODS:
                return True
    return False


class ExceptionHygieneRule(Rule):
    """Flag bare excepts and silent broad catches."""

    rule_id = "exceptions"
    description = (
        "no bare except; broad except must re-raise, log, or count the "
        "failure"
    )

    def check_file(
        self, source: SourceFile, model: ProjectModel
    ) -> Iterable[Finding]:
        """Flag every unhygienic ``except`` handler in one file."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source.relpath,
                    node.lineno,
                    "bare 'except:' also catches SystemExit and "
                    "KeyboardInterrupt; catch the exception type you mean",
                )
                continue
            caught = set(_exception_names(node.type))
            if caught & BROAD_NAMES and not _handler_mitigates(node):
                broad = sorted(caught & BROAD_NAMES)[0]
                yield self.finding(
                    source.relpath,
                    node.lineno,
                    f"'except {broad}' swallows the failure silently; "
                    "re-raise, log, or count it in a metric (or justify "
                    "with '# repro: allow[exceptions]')",
                )

"""``lock-order`` — the global lock-acquisition graph must be acyclic.

The serving stack nests locks: ``RecommendationService._lock`` is held
while the breaker resets and gauges update, the breaker's RLock is held
while transition listeners fire, every metrics instrument has its own
lock. The PR-5 ``locks`` rule checks each class in isolation; this rule
builds the *cross-class* acquisition graph over the dataflow layer:

- **nodes** are lock-owning classes (``self._lock = threading.Lock()``
  or ``RLock()`` anywhere in the MRO's ``__init__``);
- **edges** ``A -> B`` mean a method of ``A``, while holding ``A``'s
  lock (directly or through same-class helpers), calls into a method of
  ``B`` that (transitively within ``B``) acquires ``B``'s lock;
- a **cycle** means two threads entering from opposite ends can
  deadlock — flagged with the full call-chain witness;
- a helper method that mutates guarded attributes *without* acquiring
  is additionally flagged when the call graph reaches it both from a
  locked and from an unlocked context (the interprocedural
  generalisation of the per-file mixed-guard check).

Dynamic calls (callbacks, ``getattr``) resolve to unknown and create no
edges — the graph under-approximates, so every reported cycle is real
in the resolved call graph.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.dataflow import (
    ClassInfo,
    DataflowModel,
    FunctionInfo,
    WitnessStep,
    body_statements,
    dotted_parts,
    get_dataflow,
)
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.rules.base import Rule

#: Canonical lock constructors that make a class lock-owning.
LOCK_TYPES = {"threading.Lock", "threading.RLock"}

#: The guarded-lock attribute name (the repo-wide convention).
LOCK_ATTR = "_lock"

#: Methods allowed to touch guarded state before the object escapes.
CONSTRUCTOR_METHODS = {"__init__", "__new__", "__post_init__"}

#: Suffix marking a helper whose caller must already hold the lock.
LOCKED_SUFFIX = "_locked"


class LockOrderRule(Rule):
    """Flag lock-acquisition cycles and cross-call guard inconsistency."""

    rule_id = "lock-order"
    description = (
        "cross-class lock acquisition graph must be acyclic; guarded "
        "attributes must not be reachable locked and unlocked"
    )
    version = 1

    def check_project(self, model: ProjectModel) -> Iterable[Finding]:
        """Lock-order cycles and mixed-reachability mutations project-wide."""
        df = get_dataflow(model)
        owners = _lock_owners(df)
        acquires = {
            key: _acquiring_methods(df, info)
            for key, info in owners.items()
        }
        edges: dict[str, dict[str, tuple[WitnessStep, ...]]] = {}
        for key, info in owners.items():
            for target, witness in self._class_edges(
                df, owners, acquires, key, info
            ):
                edges.setdefault(key, {}).setdefault(target, witness)
        yield from self._cycle_findings(df, owners, edges)
        for key, info in owners.items():
            yield from self._mixed_reachability(df, owners, key, info)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def _class_edges(
        self,
        df: DataflowModel,
        owners: dict[str, ClassInfo],
        acquires: dict[str, set[str]],
        key: str,
        info: ClassInfo,
    ):
        for method in _own_methods(df, info):
            for region_line, call in _locked_calls(df, info, method):
                for edge in self._edge_targets(
                    df, owners, acquires, key, method, region_line, call,
                    set(),
                ):
                    yield edge

    def _edge_targets(
        self,
        df: DataflowModel,
        owners: dict[str, ClassInfo],
        acquires: dict[str, set[str]],
        key: str,
        method: FunctionInfo,
        region_line: int,
        call: ast.Call,
        visited: set[str],
    ):
        env = df.function_env(method)
        for target in df.call_targets(method, call, env):
            owner_key, method_name = _split_method(target, owners)
            if owner_key is None:
                continue
            if owner_key == key:
                # Same-class helper: the lock is still held inside it,
                # so its outgoing calls extend the region.
                helper = df.resolve_method(owner_key, method_name)
                if helper is None or helper.canonical in visited:
                    continue
                visited.add(helper.canonical)
                for inner in _calls_in(helper):
                    yield from self._edge_targets(
                        df, owners, acquires, key, helper, region_line,
                        inner, visited,
                    )
                continue
            if method_name in acquires.get(owner_key, set()):
                witness = (
                    WitnessStep(
                        method.source.relpath,
                        region_line,
                        f"{method.qualname}() holds "
                        f"{_short(key)}.{LOCK_ATTR}",
                    ),
                    WitnessStep(
                        method.source.relpath,
                        call.lineno,
                        f"calls {_short(owner_key)}.{method_name}() "
                        "while holding it",
                    ),
                    WitnessStep(
                        owners[owner_key].source.relpath,
                        owners[owner_key].node.lineno,
                        f"{_short(owner_key)}.{method_name}() acquires "
                        f"{_short(owner_key)}.{LOCK_ATTR}",
                    ),
                )
                yield owner_key, witness

    def _cycle_findings(
        self,
        df: DataflowModel,
        owners: dict[str, ClassInfo],
        edges: dict[str, dict[str, tuple[WitnessStep, ...]]],
    ) -> Iterable[Finding]:
        for cycle in _find_cycles(edges):
            first = cycle[0]
            info = owners[first]
            chain = " -> ".join(_short(key) for key in (*cycle, first))
            witness: list[WitnessStep] = []
            for index, node in enumerate(cycle):
                successor = cycle[(index + 1) % len(cycle)]
                witness.extend(edges[node][successor])
            yield self.finding(
                info.source.relpath,
                info.node.lineno,
                f"lock-order cycle {chain}: two threads entering from "
                "opposite ends can deadlock",
                witness=tuple(witness),
            )

    # ------------------------------------------------------------------
    # interprocedural mixed locked/unlocked mutation
    # ------------------------------------------------------------------

    def _mixed_reachability(
        self,
        df: DataflowModel,
        owners: dict[str, ClassInfo],
        key: str,
        info: ClassInfo,
    ) -> Iterable[Finding]:
        methods = list(_own_methods(df, info))
        # Helpers that mutate guarded attrs without acquiring and
        # without the caller-holds-lock suffix.
        for method in methods:
            if (
                method.name in CONSTRUCTOR_METHODS
                or method.name.endswith(LOCKED_SUFFIX)
            ):
                continue
            if _acquires_directly(method):
                continue
            mutated = _unguarded_mutations(method)
            if not mutated:
                continue
            locked_caller = _caller_context(df, info, method, locked=True)
            unlocked_caller = _caller_context(
                df, info, method, locked=False
            )
            if locked_caller is None or unlocked_caller is None:
                continue
            attr, line = mutated[0]
            yield self.finding(
                method.source.relpath,
                line,
                f"self.{attr} is mutated without {_short(key)}."
                f"{LOCK_ATTR} in {method.name}(), which the call graph "
                f"reaches both with the lock held "
                f"({locked_caller[0]}:{locked_caller[1]}) and without "
                f"it ({unlocked_caller[0]}:{unlocked_caller[1]})",
                witness=(
                    WitnessStep(
                        method.source.relpath,
                        line,
                        f"unguarded mutation of self.{attr} in "
                        f"{method.qualname}()",
                    ),
                    WitnessStep(
                        method.source.relpath,
                        locked_caller[1],
                        f"reached with the lock held from "
                        f"{locked_caller[2]}()",
                    ),
                    WitnessStep(
                        method.source.relpath,
                        unlocked_caller[1],
                        f"reached without the lock from "
                        f"{unlocked_caller[2]}()",
                    ),
                ),
            )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _lock_owners(df: DataflowModel) -> dict[str, ClassInfo]:
    """Classes whose MRO ``__init__`` assigns a ``threading`` lock."""
    owners: dict[str, ClassInfo] = {}
    for key, info in df.classes.items():
        for mro_info in df.mro(key):
            init = df.functions.get(f"{mro_info.key}.__init__")
            if init is None:
                continue
            env = df.function_env(init)
            prov = env.get(f"self.{LOCK_ATTR}")
            if prov is not None and prov.origin.startswith("call:"):
                if prov.origin[5:] in LOCK_TYPES:
                    # Attribute the lock to the class that defines it so
                    # subclasses share one graph node.
                    owners[mro_info.key] = mro_info
                    break
    return owners


def _own_methods(df: DataflowModel, info: ClassInfo):
    for name in sorted(info.methods):
        fi = df.functions.get(info.methods[name])
        if fi is not None:
            yield fi


def _acquires_directly(method: FunctionInfo) -> bool:
    for stmt in body_statements(method.node):
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                parts = dotted_parts(item.context_expr)
                if parts == ["self", LOCK_ATTR]:
                    return True
    return False


def _acquiring_methods(df: DataflowModel, info: ClassInfo) -> set[str]:
    """Method names that (transitively within the class) take the lock."""
    direct: set[str] = set()
    calls: dict[str, set[str]] = {}
    for method in _own_methods(df, info):
        if _acquires_directly(method):
            direct.add(method.name)
        names: set[str] = set()
        for call in _calls_in(method):
            parts = dotted_parts(call.func)
            if parts is not None and len(parts) == 2 and parts[0] == "self":
                names.add(parts[1])
        calls[method.name] = names
    acquired = set(direct)
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in acquired and callees & acquired:
                acquired.add(name)
                changed = True
    return acquired


def _calls_in(method: FunctionInfo):
    for stmt in body_statements(method.node):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node


def _locked_calls(df: DataflowModel, info: ClassInfo, method: FunctionInfo):
    """``(region line, call)`` pairs inside ``with self._lock`` bodies."""
    for stmt in body_statements(method.node):
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            continue
        if not any(
            dotted_parts(item.context_expr) == ["self", LOCK_ATTR]
            for item in stmt.items
        ):
            continue
        for inner in stmt.body:
            for node in ast.walk(inner):
                if isinstance(node, ast.Call):
                    yield stmt.lineno, node


def _split_method(
    canonical: str, owners: dict[str, ClassInfo]
) -> tuple[str | None, str]:
    """``module.Class.method`` split into (owner key, method name)."""
    head, _, name = canonical.rpartition(".")
    if head in owners:
        return head, name
    return None, name


def _find_cycles(
    edges: dict[str, dict[str, tuple]]
) -> list[list[str]]:
    """Elementary cycles via DFS (deduplicated by node set)."""
    cycles: list[list[str]] = []
    seen_sets: set[frozenset] = set()

    def visit(node: str, path: list[str], on_path: set[str]) -> None:
        for successor in sorted(edges.get(node, {})):
            if successor in on_path:
                start = path.index(successor)
                cycle = path[start:]
                key = frozenset(cycle)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(cycle)
                continue
            if len(path) < 16:
                visit(successor, path + [successor], on_path | {successor})

    for start in sorted(edges):
        visit(start, [start], {start})
    return cycles


def _unguarded_mutations(method: FunctionInfo) -> list[tuple[str, int]]:
    """``(attr, line)`` for self-attr writes outside any lock region."""
    locked_spans: list[tuple[int, int]] = []
    for stmt in body_statements(method.node):
        if isinstance(stmt, (ast.With, ast.AsyncWith)) and any(
            dotted_parts(item.context_expr) == ["self", LOCK_ATTR]
            for item in stmt.items
        ):
            locked_spans.append(
                (stmt.lineno, stmt.end_lineno or stmt.lineno)
            )
    out: list[tuple[str, int]] = []
    for stmt in body_statements(method.node):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr != LOCK_ATTR
            ):
                line = stmt.lineno
                if not any(a <= line <= b for a, b in locked_spans):
                    out.append((target.attr, line))
    return sorted(out, key=lambda item: item[1])


def _caller_context(
    df: DataflowModel,
    info: ClassInfo,
    method: FunctionInfo,
    locked: bool,
) -> tuple[str, int, str] | None:
    """A same-class call site reaching ``method`` in the given context.

    Returns ``(relpath, line, caller qualname)`` or ``None``. A call is
    *locked* when it sits inside a ``with self._lock`` region or in a
    ``*_locked`` helper; everything else is unlocked.
    """
    for caller in _own_methods(df, info):
        if caller.canonical == method.canonical:
            continue
        locked_lines: set[int] = set()
        for region_line, call in _locked_calls(df, info, caller):
            locked_lines.add(call.lineno)
        caller_locked_context = caller.name.endswith(LOCKED_SUFFIX)
        for call in _calls_in(caller):
            parts = dotted_parts(call.func)
            if parts != ["self", method.name]:
                continue
            is_locked = (
                call.lineno in locked_lines or caller_locked_context
            )
            if is_locked == locked:
                return (
                    caller.source.relpath,
                    call.lineno,
                    caller.qualname,
                )
    return None


def _short(class_key: str) -> str:
    return class_key.rsplit(".", 1)[-1]

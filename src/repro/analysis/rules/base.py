"""The :class:`Rule` plug-in contract.

A rule is a stateless object with a stable ``rule_id`` (the name used by
``--rule``, inline pragmas, and the baseline) and two hooks:

- :meth:`Rule.check_file` — called once per analyzed Python file with the
  shared :class:`~repro.analysis.model.ProjectModel`; the place for
  AST-local checks (determinism, locks, exceptions, docstrings);
- :meth:`Rule.check_project` — called once per run after every file; the
  place for whole-graph checks (layering, import cycles, markdown
  links).

Both return iterables of :class:`~repro.analysis.findings.Finding`; the
runner owns ordering, suppression, and rendering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, SourceFile

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.analysis.dataflow import WitnessStep


class Rule:
    """Base class every analysis rule extends."""

    #: Stable identifier used by ``--rule``, pragmas, and baselines.
    rule_id: str = ""

    #: One-line summary shown in ``repro check --help`` style listings.
    description: str = ""

    #: Bumped whenever the rule's findings can change for unchanged
    #: sources; part of the incremental cache key.
    version: int = 1

    def check_file(
        self, source: SourceFile, model: ProjectModel
    ) -> Iterable[Finding]:
        """Findings local to one parsed file (default: none)."""
        return ()

    def check_project(self, model: ProjectModel) -> Iterable[Finding]:
        """Findings over the whole project model (default: none)."""
        return ()

    def finding(
        self,
        relpath: str,
        line: int,
        message: str,
        witness: "Iterable[WitnessStep]" = (),
    ) -> Finding:
        """Convenience constructor stamping this rule's id."""
        return Finding(
            path=relpath,
            line=line,
            rule=self.rule_id,
            message=message,
            witness=tuple(witness),
        )

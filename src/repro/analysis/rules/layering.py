"""Layering rule: the declared package DAG is the only legal one.

The repo's architecture is a strict layering (low to high)::

    foundation   errors, rng
    util         obs, resilience, parallel
    tables       tables
    data         datasets, text, pipeline
    core         core, retrieval
    eval         eval
    experiments  experiments
    app          app
    drivers      cli, __main__, perf, analysis (+ the repro facade)

A module may import its own layer and anything *below* it, never above.
``foundation`` and ``util`` are the leaf utilities every layer may use;
``drivers`` sit on top and may orchestrate the whole stack. A handful of
modules are explicitly re-homed by :data:`DEFAULT_SPEC.overrides` — the
end-to-end demo/bench drivers that live inside utility packages for
packaging convenience but are architecturally top-of-stack, and the
fault-injection wrappers that subclass core models:

- ``repro.obs.demo`` and ``repro.parallel.bench`` → ``drivers``;
- ``repro.resilience.faults`` → ``core``.

Besides direction, the rule also rejects *cycles*: strongly connected
components in the real module-level import graph fail the check even
when every edge individually respects the declared layers (two modules
of one layer may import each other's names only acyclically).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.rules.base import Rule


@dataclass(frozen=True)
class LayerSpec:
    """A declared layering: ordered layers of packages, plus overrides.

    ``layers`` lists ``(layer name, packages)`` from lowest to highest;
    a module may import same-or-lower layers only. ``overrides`` re-home
    individual modules (full dotted name → layer name). ``root`` names
    the top-level package whose *second* path component is the layered
    package (empty for flat fixture trees where the first component is).
    """

    layers: tuple[tuple[str, tuple[str, ...]], ...]
    overrides: Mapping[str, str] = field(default_factory=dict)
    root: str = ""

    def layer_index(self, name: str) -> int:
        """The position of layer ``name`` (0 = lowest)."""
        for index, (layer, _) in enumerate(self.layers):
            if layer == name:
                return index
        raise KeyError(name)

    def package_of(self, module: str) -> str | None:
        """The layered package a module belongs to (``None`` = foreign)."""
        if self.root:
            if module == self.root:
                return None
            prefix = self.root + "."
            if not module.startswith(prefix):
                return None
            return module[len(prefix):].split(".", 1)[0]
        return module.split(".", 1)[0]

    def layer_of(self, module: str) -> tuple[str, int] | None:
        """``(layer name, index)`` for a module, or ``None`` if unmapped."""
        override = self.overrides.get(module)
        if override is not None:
            return override, self.layer_index(override)
        package = self.package_of(module)
        if package is None:
            return None
        for index, (layer, packages) in enumerate(self.layers):
            if package in packages:
                return layer, index
        return None


#: The repo's declared architecture (see the module docstring).
DEFAULT_SPEC = LayerSpec(
    layers=(
        ("foundation", ("errors", "rng")),
        ("util", ("obs", "resilience", "parallel")),
        ("tables", ("tables",)),
        ("data", ("datasets", "text", "pipeline")),
        ("core", ("core", "retrieval")),
        ("eval", ("eval",)),
        ("experiments", ("experiments",)),
        ("app", ("app",)),
        ("drivers", ("cli", "__main__", "perf", "analysis")),
    ),
    overrides={
        # The package facade re-exports and may name anything.
        "repro": "drivers",
        # End-to-end demo/bench drivers shipped inside utility packages.
        "repro.obs.demo": "drivers",
        "repro.parallel.bench": "drivers",
        # Fault-injection wrappers subclass core recommenders.
        "repro.resilience.faults": "core",
    },
    root="repro",
)


class LayeringRule(Rule):
    """Flag imports that climb the layer stack, and any import cycle."""

    rule_id = "layering"
    description = (
        "imports must respect the declared package DAG and contain no "
        "cycles"
    )

    def __init__(self, spec: LayerSpec = DEFAULT_SPEC) -> None:
        self.spec = spec

    def check_project(self, model: ProjectModel) -> Iterable[Finding]:
        """Check layer direction, spec coverage, and cycle-freedom."""
        graph = model.import_graph()
        yield from self._check_direction(model, graph)
        yield from self._check_cycles(model, graph)

    def _check_direction(
        self, model: ProjectModel, graph: dict[str, list[tuple[str, int]]]
    ) -> Iterable[Finding]:
        unmapped_reported: set[str] = set()
        for module, edges in sorted(graph.items()):
            source = model.modules[module]
            importer = self.spec.layer_of(module)
            if importer is None:
                if (
                    module not in unmapped_reported
                    and self.spec.package_of(module) is not None
                ):
                    unmapped_reported.add(module)
                    yield self.finding(
                        source.relpath,
                        1,
                        f"module '{module}' belongs to no declared layer; "
                        "add its package to the layer spec",
                    )
                continue
            for imported, line in edges:
                target = self.spec.layer_of(imported)
                if target is None or imported == module:
                    continue
                if target[1] > importer[1]:
                    yield self.finding(
                        source.relpath,
                        line,
                        f"layer '{importer[0]}' module '{module}' may not "
                        f"import '{imported}' from higher layer "
                        f"'{target[0]}'",
                    )

    def _check_cycles(
        self, model: ProjectModel, graph: dict[str, list[tuple[str, int]]]
    ) -> Iterable[Finding]:
        adjacency = {
            module: [
                imported
                for imported, _ in edges
                if imported in graph and imported != module
            ]
            for module, edges in graph.items()
        }
        for component in _strongly_connected(adjacency):
            if len(component) < 2:
                continue
            ordered = sorted(component)
            anchor = model.modules[ordered[0]]
            yield self.finding(
                anchor.relpath,
                1,
                "import cycle: " + " -> ".join(ordered + [ordered[0]]),
            )


def _strongly_connected(
    adjacency: Mapping[str, list[str]]
) -> list[list[str]]:
    """Tarjan's SCC, iterative so deep graphs cannot blow the stack."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for start in sorted(adjacency):
        if start in index_of:
            continue
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            neighbours = adjacency.get(node, [])
            advanced = False
            while edge_index < len(neighbours):
                neighbour = neighbours[edge_index]
                edge_index += 1
                if neighbour not in index_of:
                    work[-1] = (node, edge_index)
                    work.append((neighbour, 0))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[neighbour])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components

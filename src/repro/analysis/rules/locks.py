"""Lock-discipline rule: lock-owning classes mutate state consistently.

Classes that create a ``self._lock`` (``ServiceStats``,
``CircuitBreaker``, the metrics instruments) promise their mutable
attributes move only under that lock. The classic regression — the one
this rule exists to catch statically — is an attribute that *is* guarded
on the hot path but also mutated lock-free somewhere colder (a reset
helper, a merge), silently racing the hot path.

The check: within a class that assigns ``self._lock``, an instance
attribute mutated both **inside** a ``with self._lock:`` block and
**outside** one is flagged at every unlocked site. Two escape hatches
encode the legitimate patterns:

- constructor-phase methods (``__init__``, ``__post_init__``,
  ``__new__``, ``__setstate__``) are ignored — no other thread can hold
  a reference yet;
- methods whose name ends in ``_locked`` assert "caller holds the lock"
  and count as locked context (the convention ``CircuitBreaker``'s
  private transition helpers follow).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, SourceFile
from repro.analysis.rules.base import Rule

#: Methods that run before the instance is shared between threads.
CONSTRUCTOR_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__setstate__"}
)

#: The attribute name the rule keys ownership on.
LOCK_ATTR = "_lock"


def _is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _mutated_attrs(stmt: ast.stmt) -> Iterator[str]:
    """Instance attributes a single statement assigns or augments."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets = [stmt.target]
    for target in targets:
        elements = target.elts if isinstance(target, ast.Tuple) else [target]
        for element in elements:
            if _is_self_attr(element) and element.attr != LOCK_ATTR:
                yield element.attr


def _holds_lock(node: ast.With) -> bool:
    return any(
        _is_self_attr(item.context_expr, LOCK_ATTR)
        for item in node.items
    )


class LockDisciplineRule(Rule):
    """Flag mixed locked/unlocked mutation of one attribute."""

    rule_id = "locks"
    description = (
        "in classes owning a _lock, attributes guarded on one path must "
        "be guarded on all paths"
    )

    def check_file(
        self, source: SourceFile, model: ProjectModel
    ) -> Iterable[Finding]:
        """Check every lock-owning class defined in ``source``.

        Lock ownership is inherited: a class whose (same-file) base
        assigns ``self._lock`` owns the lock too, so subclasses of a
        locked base are held to the same discipline.
        """
        classes = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
        ]
        by_name = {cls.name: cls for cls in classes}
        owners: set[str] = set()
        for cls in classes:
            if self._resolves_lock(cls, by_name, set()):
                owners.add(cls.name)
        for cls in classes:
            if cls.name in owners:
                yield from self._check_class(source, cls)

    def _resolves_lock(
        self,
        cls: ast.ClassDef,
        by_name: dict[str, ast.ClassDef],
        seen: set[str],
    ) -> bool:
        if cls.name in seen:
            return False
        seen.add(cls.name)
        if any(
            self._assigns_lock(method)
            for method in cls.body
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            return True
        for base in cls.bases:
            name = base.id if isinstance(base, ast.Name) else None
            if name in by_name and self._resolves_lock(
                by_name[name], by_name, seen
            ):
                return True
        return False

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods = [
            child
            for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        locked: dict[str, int] = {}
        unlocked: list[tuple[str, int, str]] = []
        for method in methods:
            if method.name in CONSTRUCTOR_METHODS:
                continue
            in_locked_method = method.name.endswith("_locked")
            self._scan(
                method.body, in_locked_method, method.name, locked, unlocked
            )
        for attr, line, method_name in unlocked:
            if attr in locked:
                yield self.finding(
                    source.relpath,
                    line,
                    f"'{cls.name}.{attr}' is mutated in '{method_name}' "
                    "outside 'with self._lock' but under the lock at line "
                    f"{locked[attr]}; hold the lock here (or mark the "
                    "method caller-holds-lock with a '_locked' suffix)",
                )

    @staticmethod
    def _assigns_lock(method: ast.AST) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and any(
                _is_self_attr(target, LOCK_ATTR) for target in node.targets
            ):
                return True
        return False

    def _scan(
        self,
        stmts: list[ast.stmt],
        locked_context: bool,
        method_name: str,
        locked: dict[str, int],
        unlocked: list[tuple[str, int, str]],
    ) -> None:
        for stmt in stmts:
            for attr in _mutated_attrs(stmt):
                if locked_context:
                    locked.setdefault(attr, stmt.lineno)
                else:
                    unlocked.append((attr, stmt.lineno, method_name))
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan(
                    stmt.body,
                    locked_context or _holds_lock(stmt),
                    method_name,
                    locked,
                    unlocked,
                )
            elif isinstance(stmt, (ast.If,)):
                self._scan(
                    stmt.body, locked_context, method_name, locked, unlocked
                )
                self._scan(
                    stmt.orelse, locked_context, method_name, locked, unlocked
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._scan(
                    stmt.body, locked_context, method_name, locked, unlocked
                )
                self._scan(
                    stmt.orelse, locked_context, method_name, locked, unlocked
                )
            elif isinstance(stmt, ast.Try):
                self._scan(
                    stmt.body, locked_context, method_name, locked, unlocked
                )
                for handler in stmt.handlers:
                    self._scan(
                        handler.body, locked_context, method_name, locked,
                        unlocked,
                    )
                self._scan(
                    stmt.orelse, locked_context, method_name, locked, unlocked
                )
                self._scan(
                    stmt.finalbody, locked_context, method_name, locked,
                    unlocked,
                )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # A closure defined here typically runs in the enclosing
                # context; scan it with the context of its definition.
                self._scan(
                    stmt.body, locked_context, method_name, locked, unlocked
                )

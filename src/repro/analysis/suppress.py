"""Inline suppression pragmas and the committed findings baseline.

Two escape hatches keep the analyzer's "must run clean" gate livable:

- the **inline pragma** ``# repro: allow[rule-id]`` on the flagged line
  — or on its own line directly above, for statements with no room —
  silences that rule there (comma-separate several ids; everything
  after the closing bracket is the human justification). The same
  syntax works inside markdown (``<!-- repro: allow[links] -->``)
  because suppression is matched against the raw line text, whatever
  the file type. For Python sources the pragma is *span-aware*: a
  pragma anywhere on a multi-line simple statement covers the whole
  statement, and a pragma on (or directly above) a ``def``/``class``
  header — decorators included — covers the full header span, so a
  finding reported at the ``def`` line is suppressed even when
  decorators push the pragma several physical lines away;
- the **baseline file** — JSON produced by ``repro check
  --write-baseline`` — grandfathers existing findings by their
  line-independent :attr:`~repro.analysis.findings.Finding.fingerprint`,
  so a rule can be introduced strictly ("no *new* findings") before the
  backlog is paid down.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.analysis._io import atomic_write
from repro.analysis.dataflow import header_span, iter_statements
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.model import SourceFile

#: ``# repro: allow[rule-id, other-id] — justification`` (the ``<!--``
#: opener covers markdown, where the pragma lives in an HTML comment).
PRAGMA_PATTERN = re.compile(r"(?:#|<!--)\s*repro:\s*allow\[([^\]]+)\]")

#: Version stamp written into (and required from) baseline files.
BASELINE_VERSION = 1


def allowed_rules(line: str) -> set[str]:
    """Rule ids suppressed by pragmas on this raw source line."""
    rules: set[str] = set()
    for match in PRAGMA_PATTERN.finditer(line):
        rules.update(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
    return rules


def is_suppressed(finding: Finding, line: str) -> bool:
    """Whether the raw text of the flagged line suppresses ``finding``."""
    return finding.rule in allowed_rules(line)


def pragma_line_map(source: "SourceFile") -> dict[int, set[str]]:
    """``line -> suppressed rule ids`` for one parsed Python file.

    Three layers, from coarse to fine:

    - a pragma on line ``L`` covers ``L`` and ``L + 1`` (the classic
      "own line directly above" placement);
    - a pragma anywhere on a multi-line *simple* statement covers the
      statement's full line span (so the pragma can trail the closing
      paren of a wrapped call);
    - a pragma on — or directly above — a *compound* statement's header
      (decorators through the ``def``/``class``/``with`` line) covers
      the whole header span, but **not** the body: suppressing a
      decorated ``def``'s docstring finding must not silence every
      finding inside the function.
    """
    cover: dict[int, set[str]] = {}

    def add(line_number: int, rules: set[str]) -> None:
        if rules:
            cover.setdefault(line_number, set()).update(rules)

    line_rules: dict[int, set[str]] = {}
    for index, text in enumerate(source.lines, start=1):
        rules = allowed_rules(text)
        if rules:
            line_rules[index] = rules
            add(index, rules)
            add(index + 1, rules)
    if not line_rules:
        return cover

    def span_rules(start: int, stop: int) -> set[str]:
        found: set[str] = set()
        for line_number in range(max(1, start), stop + 1):
            found |= line_rules.get(line_number, set())
        return found

    for stmt in iter_statements(source.tree):
        start, header_end = header_span(stmt)
        end = stmt.end_lineno or stmt.lineno
        if hasattr(stmt, "body") and isinstance(
            getattr(stmt, "body"), list
        ):
            rules = span_rules(start - 1, header_end)
            for line_number in range(start, header_end + 1):
                add(line_number, rules)
        else:
            rules = span_rules(start - 1, end)
            for line_number in range(start, end + 1):
                add(line_number, rules)
    return cover


def load_baseline(path: Path) -> set[str]:
    """The grandfathered fingerprints recorded in a baseline file.

    Raises:
        ValueError: when the file is not a baseline of a known version.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path} is not a repro-check baseline "
            f"(expected version {BASELINE_VERSION})"
        )
    return set(data.get("findings", []))


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Write ``findings`` as the new baseline at ``path`` (atomically)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted({finding.fingerprint for finding in findings}),
    }
    with atomic_write(Path(path), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

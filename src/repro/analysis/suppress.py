"""Inline suppression pragmas and the committed findings baseline.

Two escape hatches keep the analyzer's "must run clean" gate livable:

- the **inline pragma** ``# repro: allow[rule-id]`` on the flagged line
  — or on its own line directly above, for statements with no room —
  silences that rule there (comma-separate several ids; everything
  after the closing bracket is the human justification). The same
  syntax works inside markdown (``<!-- repro: allow[links] -->``)
  because suppression is matched against the raw line text, whatever
  the file type;
- the **baseline file** — JSON produced by ``repro check
  --write-baseline`` — grandfathers existing findings by their
  line-independent :attr:`~repro.analysis.findings.Finding.fingerprint`,
  so a rule can be introduced strictly ("no *new* findings") before the
  backlog is paid down.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding

#: ``# repro: allow[rule-id, other-id] — justification`` (the ``<!--``
#: opener covers markdown, where the pragma lives in an HTML comment).
PRAGMA_PATTERN = re.compile(r"(?:#|<!--)\s*repro:\s*allow\[([^\]]+)\]")

#: Version stamp written into (and required from) baseline files.
BASELINE_VERSION = 1


def allowed_rules(line: str) -> set[str]:
    """Rule ids suppressed by pragmas on this raw source line."""
    rules: set[str] = set()
    for match in PRAGMA_PATTERN.finditer(line):
        rules.update(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
    return rules


def is_suppressed(finding: Finding, line: str) -> bool:
    """Whether the raw text of the flagged line suppresses ``finding``."""
    return finding.rule in allowed_rules(line)


def load_baseline(path: Path) -> set[str]:
    """The grandfathered fingerprints recorded in a baseline file.

    Raises:
        ValueError: when the file is not a baseline of a known version.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path} is not a repro-check baseline "
            f"(expected version {BASELINE_VERSION})"
        )
    return set(data.get("findings", []))


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Write ``findings`` as the new baseline at ``path``."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted({finding.fingerprint for finding in findings}),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

"""The incremental analysis cache behind warm ``repro check`` runs.

A full ``src/`` run parses every file and rebuilds the dataflow layer;
on an unchanged tree that work is pure waste. The cache keys one run's
*post-suppression* findings on everything that could change them:

- each analyzed file's ``(relpath, sha256(source))`` pair — any edit,
  including a pragma edit, changes the digest and misses;
- the active rules' ``(rule_id, version)`` pairs, in order — bumping a
  rule's :attr:`~repro.analysis.rules.base.Rule.version` invalidates
  cold caches when its findings can change for unchanged sources;
- the engine's :data:`CACHE_VERSION` and the resolved root.

A hit restores the findings (witness trails included) without touching
``ast.parse`` — only file reads for hashing — so warm runs are
measurably faster and byte-identical. Baseline filtering happens after
the cache layer, so editing the baseline file never needs ``--no-cache``.
Entries are JSON files under ``.cache/repro-check/`` written through
the stdlib-only :func:`~repro.analysis._io.atomic_write`; stale entries
are pruned oldest-first past :data:`MAX_ENTRIES`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis._io import atomic_write
from repro.analysis.dataflow import WitnessStep
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Bumped when the cache payload layout or engine semantics change.
CACHE_VERSION = 1

#: Default cache directory, relative to the repository root.
CACHE_DIRNAME = Path(".cache") / "repro-check"

#: Entries kept before oldest-first pruning.
MAX_ENTRIES = 32


def hash_files(
    paths: Iterable[Path], root: Path
) -> list[tuple[str, str]]:
    """Sorted ``(relpath, sha256)`` pairs over the analyzed files."""
    entries: list[tuple[str, str]] = []
    for path in paths:
        resolved = Path(path).resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            relpath = resolved.as_posix()
        digest = hashlib.sha256(resolved.read_bytes()).hexdigest()
        entries.append((relpath, digest))
    return sorted(entries)


def cache_key(
    entries: Sequence[tuple[str, str]],
    rules: Sequence[Rule],
    root: Path,
) -> str:
    """The content-addressed key of one analyzer run."""
    hasher = hashlib.sha256()
    hasher.update(f"cache-version:{CACHE_VERSION}\n".encode())
    hasher.update(f"root:{root}\n".encode())
    for rule in rules:
        hasher.update(f"rule:{rule.rule_id}@{rule.version}\n".encode())
    for relpath, digest in entries:
        hasher.update(f"file:{relpath}:{digest}\n".encode())
    return hasher.hexdigest()


def load_cached(cache_dir: Path, key: str) -> dict | None:
    """The stored payload for ``key``, or ``None`` on miss/corruption."""
    path = Path(cache_dir) / f"{key}.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("cache_version") != CACHE_VERSION
    ):
        return None
    return payload


def store_cached(cache_dir: Path, key: str, payload: dict) -> None:
    """Persist ``payload`` under ``key``, pruning old entries.

    Cache writes are best-effort: an unwritable cache directory must
    never fail the check run itself.
    """
    cache_dir = Path(cache_dir)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        with atomic_write(
            cache_dir / f"{key}.json", "w", encoding="utf-8"
        ) as handle:
            json.dump(
                {"cache_version": CACHE_VERSION, **payload},
                handle,
                sort_keys=True,
            )
            handle.write("\n")
        entries = sorted(
            cache_dir.glob("*.json"), key=lambda p: p.stat().st_mtime
        )
        for stale in entries[: max(0, len(entries) - MAX_ENTRIES)]:
            stale.unlink(missing_ok=True)
    except OSError:
        return


def findings_to_payload(findings: Iterable[Finding]) -> list[dict]:
    """Findings (witness included) as JSON-safe cache entries."""
    return [finding.as_dict() for finding in findings]


def findings_from_payload(entries: Iterable[dict]) -> list[Finding]:
    """Reconstruct findings from :func:`findings_to_payload` output."""
    out: list[Finding] = []
    for entry in entries:
        witness = tuple(
            WitnessStep(
                path=step["path"], line=step["line"], note=step["note"]
            )
            for step in entry.get("witness", [])
        )
        out.append(
            Finding(
                path=entry["path"],
                line=entry["line"],
                rule=entry["rule"],
                message=entry["message"],
                severity=entry["severity"],
                witness=witness,
            )
        )
    return out

"""Orchestration: build the model, run the rules, filter, render.

:func:`run_check` is the single entry point behind ``python -m repro
check``, the tier-1 gate (``tests/analysis/test_src_clean.py``), and the
CI job. It builds one :class:`~repro.analysis.model.ProjectModel`, runs
every requested rule's per-file and per-project hooks, then applies the
two suppression layers (inline pragmas — span-aware for Python files,
raw-line for markdown — then the baseline file) and returns a
:class:`CheckResult` that renders as text, JSON, or SARIF 2.1.0.

With ``cache_dir`` set, a run whose sources and rules are unchanged is
served from the incremental cache (:mod:`repro.analysis.cache`) without
re-parsing anything; baseline filtering is applied after the cache so a
baseline edit alone never stales an entry.

Everything here is stdlib-only on purpose: the docs CI job runs the
shimmed checkers without numpy installed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.model import (
    ProjectModel,
    build_project,
    collect_python_files,
)
from repro.analysis.rules import Rule, default_rules
from repro.analysis.suppress import (
    is_suppressed,
    load_baseline,
    pragma_line_map,
)

#: Markers that identify the repository root when walking upwards.
ROOT_MARKERS = ("pyproject.toml", ".git")

#: Schema version stamped into ``--format json`` output. v2 adds the
#: per-finding ``witness`` array and the dataflow rules.
JSON_VERSION = 2

#: SARIF constants for ``--format sarif``.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-check"


@dataclass
class CheckResult:
    """The outcome of one analyzer run."""

    findings: list[Finding]
    files_checked: int
    suppressed: int = 0
    baselined: int = 0
    root: Path = field(default_factory=Path)
    #: ``(rule_id, description)`` of every rule that ran, in run order.
    rule_meta: list[tuple[str, str]] = field(default_factory=list)
    #: Post-pragma, *pre-baseline* findings — what ``--explain`` and
    #: ``--write-baseline`` operate on.
    all_findings: list[Finding] = field(default_factory=list, repr=False)
    #: Whether this result was served from the incremental cache.
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """Whether the run is clean (exit code 0)."""
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        """``rule id -> surviving finding count`` (sorted by id)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        """The ``--format json`` payload."""
        return {
            "version": JSON_VERSION,
            "root": str(self.root),
            "files_checked": self.files_checked,
            "findings": [finding.as_dict() for finding in self.findings],
            "counts": {
                "total": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "by_rule": self.counts_by_rule(),
            },
        }

    def render_text(self) -> str:
        """The human-readable report (one line per finding + summary)."""
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            by_rule = ", ".join(
                f"{rule}={count}"
                for rule, count in self.counts_by_rule().items()
            )
            lines.append(
                f"repro check: {len(self.findings)} finding(s) "
                f"[{by_rule}] in {self.files_checked} file(s)"
            )
        else:
            extras = []
            if self.suppressed:
                extras.append(f"{self.suppressed} suppressed")
            if self.baselined:
                extras.append(f"{self.baselined} baselined")
            suffix = f" ({', '.join(extras)})" if extras else ""
            lines.append(
                f"repro check: clean — {self.files_checked} file(s), "
                f"0 findings{suffix}"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        """The machine-readable report."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def as_sarif(self) -> dict:
        """The run as a SARIF 2.1.0 log object.

        Witness paths become ``relatedLocations`` on each result, and
        the line-independent fingerprint ships as a
        ``partialFingerprints`` entry so SARIF viewers track findings
        across rebases the same way the baseline file does.
        """
        results = []
        for finding in self.findings:
            result: dict = {
                "ruleId": finding.rule,
                "level": (
                    "error"
                    if finding.severity == SEVERITY_ERROR
                    else "warning"
                ),
                "message": {"text": finding.message},
                "locations": [
                    _sarif_location(finding.path, finding.line)
                ],
                "partialFingerprints": {
                    "reproCheck/v1": finding.fingerprint
                },
            }
            if finding.witness:
                result["relatedLocations"] = [
                    {
                        **_sarif_location(step.path, step.line),
                        "message": {"text": step.note},
                    }
                    for step in finding.witness
                ]
            results.append(result)
        return {
            "$schema": SARIF_SCHEMA,
            "version": SARIF_VERSION,
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": TOOL_NAME,
                            "informationUri": (
                                "https://example.invalid/repro-check"
                            ),
                            "rules": [
                                {
                                    "id": rule_id,
                                    "shortDescription": {
                                        "text": description or rule_id
                                    },
                                }
                                for rule_id, description in self.rule_meta
                            ],
                        }
                    },
                    "columnKind": "utf16CodeUnits",
                    "results": results,
                }
            ],
        }

    def render_sarif(self) -> str:
        """The ``--format sarif`` report."""
        return json.dumps(self.as_sarif(), indent=2, sort_keys=True)


def _sarif_location(path: str, line: int) -> dict:
    """One SARIF physicalLocation for a repo-relative path."""
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(1, line)},
        }
    }


def explain_finding(result: CheckResult, fingerprint: str) -> str | None:
    """The witness-path walkthrough for one finding, or ``None``.

    ``fingerprint`` may be any unique prefix of a full
    ``rule::path::message`` fingerprint; matching runs over
    :attr:`CheckResult.all_findings`, so baselined findings can be
    explained too.
    """
    matches = [
        finding
        for finding in result.all_findings
        if finding.fingerprint == fingerprint
        or finding.fingerprint.startswith(fingerprint)
    ]
    if not matches:
        return None
    blocks = []
    for finding in matches:
        lines = [finding.render(), f"  fingerprint: {finding.fingerprint}"]
        if finding.witness:
            lines.append("  witness path:")
            lines.extend(
                f"    {index}. {step.render()}"
                for index, step in enumerate(finding.witness, start=1)
            )
        else:
            lines.append(
                "  witness path: (syntactic finding — flagged directly "
                "at the reported line)"
            )
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def detect_root(paths: Sequence[Path]) -> Path:
    """The nearest ancestor of the first path that looks like a repo root."""
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if any((candidate / marker).exists() for marker in ROOT_MARKERS):
            return candidate
    return start


def select_rules(
    rules: Iterable[Rule], rule_ids: Sequence[str] | None
) -> list[Rule]:
    """The subset of ``rules`` matching ``rule_ids`` (all when ``None``).

    Raises:
        ValueError: when an id names no known rule.
    """
    rules = list(rules)
    if not rule_ids:
        return rules
    known = {rule.rule_id: rule for rule in rules}
    missing = [rule_id for rule_id in rule_ids if rule_id not in known]
    if missing:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(missing))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [known[rule_id] for rule_id in rule_ids]


def run_check(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    rules: Iterable[Rule] | None = None,
    rule_ids: Sequence[str] | None = None,
    baseline: Path | str | None = None,
    cache_dir: Path | str | None = None,
) -> CheckResult:
    """Run the analyzer over ``paths`` and return the filtered result.

    Args:
        paths: files or directories of Python sources to analyze.
        root: repository root for relative paths and markdown scanning;
            auto-detected from the first path when omitted.
        rules: rule instances to run (default: :func:`default_rules`).
        rule_ids: optional ordered filter over the rules' ids.
        baseline: optional baseline file of grandfathered fingerprints.
        cache_dir: directory for the incremental cache; ``None`` (the
            default) disables caching entirely.
    """
    from repro.analysis import cache as cache_mod

    path_list = [Path(p) for p in paths]
    resolved_root = (
        Path(root).resolve() if root is not None else detect_root(path_list)
    )
    active = select_rules(
        default_rules() if rules is None else rules, rule_ids
    )
    rule_meta = [(rule.rule_id, rule.description) for rule in active]

    key = None
    kept: list[Finding] | None = None
    suppressed = 0
    files_checked = 0
    from_cache = False
    if cache_dir is not None:
        entries = cache_mod.hash_files(
            collect_python_files(path_list), resolved_root
        )
        key = cache_mod.cache_key(entries, active, resolved_root)
        payload = cache_mod.load_cached(Path(cache_dir), key)
        if payload is not None:
            kept = cache_mod.findings_from_payload(payload["findings"])
            suppressed = payload["suppressed"]
            files_checked = payload["files_checked"]
            from_cache = True

    if kept is None:
        model = build_project(path_list, resolved_root)
        raw: list[Finding] = []
        for rule in active:
            for source in model.files:
                raw.extend(rule.check_file(source, model))
            raw.extend(rule.check_project(model))
        raw = sorted(set(raw))
        kept, suppressed = _apply_pragmas(raw, model, resolved_root)
        files_checked = len(model.files)
        if cache_dir is not None and key is not None:
            cache_mod.store_cached(
                Path(cache_dir),
                key,
                {
                    "findings": cache_mod.findings_to_payload(kept),
                    "suppressed": suppressed,
                    "files_checked": files_checked,
                },
            )

    baselined = 0
    surviving = kept
    if baseline is not None and Path(baseline).exists():
        grandfathered = load_baseline(Path(baseline))
        surviving = []
        for finding in kept:
            if finding.fingerprint in grandfathered:
                baselined += 1
            else:
                surviving.append(finding)

    return CheckResult(
        findings=surviving,
        files_checked=files_checked,
        suppressed=suppressed,
        baselined=baselined,
        root=resolved_root,
        rule_meta=rule_meta,
        all_findings=kept,
        from_cache=from_cache,
    )


def _apply_pragmas(
    raw: Sequence[Finding], model: ProjectModel, root: Path
) -> tuple[list[Finding], int]:
    """Split raw findings into (kept, suppressed-count) via pragmas.

    Findings in parsed Python files use the span-aware
    :func:`~repro.analysis.suppress.pragma_line_map`; findings in files
    outside the model (markdown links) fall back to matching the raw
    text of the flagged line and the line above.
    """
    by_relpath = {source.relpath: source for source in model.files}
    span_maps: dict[str, dict[int, set[str]]] = {}
    line_cache: dict[str, list[str]] = {}
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        source = by_relpath.get(finding.path)
        if source is not None:
            span_map = span_maps.get(finding.path)
            if span_map is None:
                span_map = pragma_line_map(source)
                span_maps[finding.path] = span_map
            hit = finding.rule in span_map.get(finding.line, ())
        else:
            texts = (
                _line_text(finding, finding.line, root, model, line_cache),
                _line_text(
                    finding, finding.line - 1, root, model, line_cache
                ),
            )
            hit = any(is_suppressed(finding, text) for text in texts)
        if hit:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def _line_text(
    finding: Finding,
    line: int,
    root: Path,
    model: ProjectModel,
    cache: dict[str, list[str]],
) -> str:
    """The raw text of line ``line`` of a finding's file ("" if absent)."""
    lines = cache.get(finding.path)
    if lines is None:
        for source in model.files:
            if source.relpath == finding.path:
                lines = source.lines
                break
        else:
            target = root / finding.path
            try:
                lines = target.read_text(encoding="utf-8").splitlines()
            except OSError:
                lines = []
        cache[finding.path] = lines
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""

"""Orchestration: build the model, run the rules, filter, render.

:func:`run_check` is the single entry point behind ``python -m repro
check``, the tier-1 gate (``tests/analysis/test_src_clean.py``), and the
CI job. It builds one :class:`~repro.analysis.model.ProjectModel`, runs
every requested rule's per-file and per-project hooks, then applies the
two suppression layers (inline pragmas matched against the raw flagged
line, then the baseline file) and returns a :class:`CheckResult`.

Everything here is stdlib-only on purpose: the docs CI job runs the
shimmed checkers without numpy installed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, build_project
from repro.analysis.rules import Rule, default_rules
from repro.analysis.suppress import is_suppressed, load_baseline

#: Markers that identify the repository root when walking upwards.
ROOT_MARKERS = ("pyproject.toml", ".git")

#: Schema version stamped into ``--format json`` output.
JSON_VERSION = 1


@dataclass
class CheckResult:
    """The outcome of one analyzer run."""

    findings: list[Finding]
    files_checked: int
    suppressed: int = 0
    baselined: int = 0
    root: Path = field(default_factory=Path)

    @property
    def ok(self) -> bool:
        """Whether the run is clean (exit code 0)."""
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        """``rule id -> surviving finding count`` (sorted by id)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        """The ``--format json`` payload."""
        return {
            "version": JSON_VERSION,
            "root": str(self.root),
            "files_checked": self.files_checked,
            "findings": [finding.as_dict() for finding in self.findings],
            "counts": {
                "total": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "by_rule": self.counts_by_rule(),
            },
        }

    def render_text(self) -> str:
        """The human-readable report (one line per finding + summary)."""
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            by_rule = ", ".join(
                f"{rule}={count}"
                for rule, count in self.counts_by_rule().items()
            )
            lines.append(
                f"repro check: {len(self.findings)} finding(s) "
                f"[{by_rule}] in {self.files_checked} file(s)"
            )
        else:
            extras = []
            if self.suppressed:
                extras.append(f"{self.suppressed} suppressed")
            if self.baselined:
                extras.append(f"{self.baselined} baselined")
            suffix = f" ({', '.join(extras)})" if extras else ""
            lines.append(
                f"repro check: clean — {self.files_checked} file(s), "
                f"0 findings{suffix}"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        """The machine-readable report."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def detect_root(paths: Sequence[Path]) -> Path:
    """The nearest ancestor of the first path that looks like a repo root."""
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if any((candidate / marker).exists() for marker in ROOT_MARKERS):
            return candidate
    return start


def select_rules(
    rules: Iterable[Rule], rule_ids: Sequence[str] | None
) -> list[Rule]:
    """The subset of ``rules`` matching ``rule_ids`` (all when ``None``).

    Raises:
        ValueError: when an id names no known rule.
    """
    rules = list(rules)
    if not rule_ids:
        return rules
    known = {rule.rule_id: rule for rule in rules}
    missing = [rule_id for rule_id in rule_ids if rule_id not in known]
    if missing:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(missing))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [known[rule_id] for rule_id in rule_ids]


def run_check(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    rules: Iterable[Rule] | None = None,
    rule_ids: Sequence[str] | None = None,
    baseline: Path | str | None = None,
) -> CheckResult:
    """Run the analyzer over ``paths`` and return the filtered result.

    Args:
        paths: files or directories of Python sources to analyze.
        root: repository root for relative paths and markdown scanning;
            auto-detected from the first path when omitted.
        rules: rule instances to run (default: :func:`default_rules`).
        rule_ids: optional ordered filter over the rules' ids.
        baseline: optional baseline file of grandfathered fingerprints.
    """
    path_list = [Path(p) for p in paths]
    resolved_root = (
        Path(root).resolve() if root is not None else detect_root(path_list)
    )
    active = select_rules(
        default_rules() if rules is None else rules, rule_ids
    )
    model = build_project(path_list, resolved_root)
    raw: list[Finding] = []
    for rule in active:
        for source in model.files:
            raw.extend(rule.check_file(source, model))
        raw.extend(rule.check_project(model))
    raw = sorted(set(raw))

    kept: list[Finding] = []
    suppressed = 0
    line_cache: dict[str, list[str]] = {}
    for finding in raw:
        texts = (
            _line_text(finding, finding.line, resolved_root, model,
                       line_cache),
            _line_text(finding, finding.line - 1, resolved_root, model,
                       line_cache),
        )
        if any(is_suppressed(finding, text) for text in texts):
            suppressed += 1
        else:
            kept.append(finding)

    baselined = 0
    if baseline is not None and Path(baseline).exists():
        grandfathered = load_baseline(Path(baseline))
        surviving = []
        for finding in kept:
            if finding.fingerprint in grandfathered:
                baselined += 1
            else:
                surviving.append(finding)
        kept = surviving

    return CheckResult(
        findings=kept,
        files_checked=len(model.files),
        suppressed=suppressed,
        baselined=baselined,
        root=resolved_root,
    )


def _line_text(
    finding: Finding,
    line: int,
    root: Path,
    model: ProjectModel,
    cache: dict[str, list[str]],
) -> str:
    """The raw text of line ``line`` of a finding's file ("" if absent)."""
    lines = cache.get(finding.path)
    if lines is None:
        for source in model.files:
            if source.relpath == finding.path:
                lines = source.lines
                break
        else:
            target = root / finding.path
            try:
                lines = target.read_text(encoding="utf-8").splitlines()
            except OSError:
                lines = []
        cache[finding.path] = lines
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""

"""The interprocedural dataflow layer under the semantic rules.

:class:`DataflowModel` extends the per-file :class:`~repro.analysis.model.
ProjectModel` with the three project-wide structures the PR-10 rules
(``seed-lineage``, ``dtype-tier``, ``lock-order``, ``resource-lifetime``)
reason over:

- **symbol tables** — per-module import alias maps (``np`` →
  ``numpy``) plus facade chasing, so a name used anywhere resolves to
  one *canonical* dotted path (``from repro.parallel import WorkerPool``
  re-exported through ``repro/parallel/__init__.py`` still canonicalises
  to ``repro.parallel.pool.WorkerPool``);
- **a call graph** — every ``ast.Call`` resolved to the
  :class:`FunctionInfo` it targets where that is statically knowable:
  plain functions through the import tables, ``self.method()`` through
  the class MRO, ``self.attr.method()`` and ``local.method()`` through
  declared/inferred receiver types. Anything dynamic degrades to
  *unknown* — an unresolved call never becomes a finding;
- **per-function provenance environments** — a forward def-use pass
  mapping each local (and ``self.attr``) name to the canonical origin
  that produced it (``call:repro.rng.derive_rng``, ``param:seed``,
  ``const`` ...) together with a :class:`WitnessStep` trail, the raw
  material of ``repro check --explain``.

Everything here is stdlib-only (``ast`` + dataclasses): the analysis
package must keep running in the dependency-free docs CI job.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.model import ProjectModel, SourceFile

#: Upper bound on witness-trail length (keeps findings readable).
MAX_TRAIL = 8

#: Upper bound on interprocedural parameter tracing depth.
MAX_TRACE_DEPTH = 6


@dataclass(frozen=True)
class WitnessStep:
    """One hop of the dataflow path behind a finding."""

    path: str
    line: int
    note: str

    def render(self) -> str:
        """The one-line ``path:line — note`` form printed by --explain."""
        return f"{self.path}:{self.line} — {self.note}"


@dataclass(frozen=True)
class Prov:
    """The inferred origin of one value.

    ``origin`` is a small grammar rather than a class hierarchy so
    provenance stays hashable and cheap to union:

    - ``call:<canonical>`` — produced by a call that resolved;
    - ``param:<name>`` — flowed in through the enclosing function's
      parameter (the hook interprocedural tracing picks up);
    - ``attr:self.<name>`` — an instance attribute with no known
      initialiser;
    - ``const`` / ``unknown`` — literals and everything unresolvable.
    """

    origin: str
    line: int = 0
    managed: bool = False
    trail: tuple[WitnessStep, ...] = ()


@dataclass
class FunctionInfo:
    """One function or method in the project, keyed by canonical name."""

    canonical: str
    module: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile
    class_key: str | None = None

    @property
    def name(self) -> str:
        """The bare function name (last qualname segment)."""
        return self.node.name

    def param_names(self) -> list[str]:
        """Positional parameter names, in order (``self`` included)."""
        args = self.node.args
        return [a.arg for a in (*args.posonlyargs, *args.args)]


@dataclass
class ClassInfo:
    """One class in the project: bases, methods, declared attr types."""

    key: str
    module: str
    name: str
    node: ast.ClassDef
    source: SourceFile
    base_keys: list[str] = field(default_factory=list)
    #: ``attr -> {canonical class keys}`` inferred from ``__init__``
    #: assignments (``self.x = ClassName(...)``) and annotations.
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved (or unknown) call inside a function body."""

    caller: FunctionInfo
    node: ast.Call
    targets: tuple[str, ...]  # canonical names; () when unknown

    @property
    def line(self) -> int:
        """The source line of the call expression."""
        return self.node.lineno


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``, or ``None`` for dynamic bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def header_span(node: ast.stmt) -> tuple[int, int]:
    """The header line span of a statement (decorators included).

    For compound statements the span stops where the body starts; for
    simple statements it covers the whole statement.
    """
    start = node.lineno
    decorators = getattr(node, "decorator_list", None)
    if decorators:
        start = min(start, decorators[0].lineno)
    body = getattr(node, "body", None)
    if isinstance(body, list) and body and hasattr(body[0], "lineno"):
        end = max(start, body[0].lineno - 1)
    else:
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
    return start, end


def iter_statements(tree: ast.AST) -> Iterator[ast.stmt]:
    """Every statement node in ``tree`` (bodies included)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            yield node


def body_statements(node: ast.AST) -> Iterator[ast.stmt]:
    """Statements of a function body in source order, skipping nested
    ``def``/``class`` bodies (those are separate analysis units)."""
    stack: list[ast.stmt] = list(
        reversed(getattr(node, "body", []))
    )
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for attr in ("body", "orelse", "finalbody"):
            stack.extend(reversed(getattr(stmt, attr, [])))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(reversed(handler.body))


class DataflowModel:
    """Project-wide symbol tables, call graph, and provenance cache."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.imports: dict[str, dict[str, str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: ``callee canonical -> [(caller FunctionInfo, ast.Call)]``.
        self.callers: dict[str, list[tuple[FunctionInfo, ast.Call]]] = {}
        self._env_cache: dict[str, dict[str, Prov]] = {}
        self._call_cache: dict[int, tuple[str, ...]] = {}
        for source in model.files:
            self._index_module(source)
        for info in self.classes.values():
            self._infer_attr_types(info)
        for info in list(self.functions.values()):
            for call in self._function_calls(info):
                for target in self.call_targets(info, call):
                    self.callers.setdefault(target, []).append((info, call))

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------

    def _index_module(self, source: SourceFile) -> None:
        table: dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                base = _import_base(node, source.module)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        self.imports[source.module] = table
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(source, stmt, qualprefix="", class_key=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(source, stmt)

    def _add_function(
        self,
        source: SourceFile,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualprefix: str,
        class_key: str | None,
    ) -> None:
        qualname = f"{qualprefix}{node.name}"
        canonical = f"{source.module}.{qualname}"
        self.functions[canonical] = FunctionInfo(
            canonical=canonical,
            module=source.module,
            qualname=qualname,
            node=node,
            source=source,
            class_key=class_key,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(
                    source, stmt, qualprefix=f"{qualname}.", class_key=None
                )

    def _add_class(self, source: SourceFile, node: ast.ClassDef) -> None:
        key = f"{source.module}.{node.name}"
        info = ClassInfo(
            key=key,
            module=source.module,
            name=node.name,
            node=node,
            source=source,
        )
        for base in node.bases:
            parts = dotted_parts(base)
            if parts is not None:
                info.base_keys.append(
                    self.resolve(source.module, ".".join(parts))
                )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(
                    source, stmt, qualprefix=f"{node.name}.", class_key=key
                )
                info.methods[stmt.name] = f"{key}.{stmt.name}"
        self.classes[key] = info

    def _infer_attr_types(self, info: ClassInfo) -> None:
        init = self.functions.get(f"{info.key}.__init__")
        if init is None:
            return
        for stmt in body_statements(init.node):
            target_attr: str | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
                if _is_self_attr(target):
                    target_attr = target.attr  # type: ignore[union-attr]
            elif isinstance(stmt, ast.AnnAssign) and _is_self_attr(
                stmt.target
            ):
                target_attr = stmt.target.attr  # type: ignore[union-attr]
                value = stmt.value
                parts = dotted_parts(_unquote_annotation(stmt.annotation))
                if parts is not None:
                    resolved = self.resolve(info.module, ".".join(parts))
                    if resolved in self.classes:
                        info.attr_types.setdefault(target_attr, set()).add(
                            resolved
                        )
            if target_attr is None:
                continue
            for call in _candidate_calls(value):
                parts = dotted_parts(call.func)
                if parts is None:
                    continue
                resolved = self.resolve(info.module, ".".join(parts))
                if resolved in self.classes:
                    info.attr_types.setdefault(target_attr, set()).add(
                        resolved
                    )
            # Parameter pass-through: ``self.x = x`` with ``x:
            # SomeClass`` annotated on the parameter.
            if isinstance(value, ast.Name):
                annotation = _unquote_annotation(
                    _param_annotation(init.node, value.id)
                )
                if annotation is not None:
                    parts = dotted_parts(annotation)
                    if parts is not None:
                        resolved = self.resolve(
                            info.module, ".".join(parts)
                        )
                        if resolved in self.classes:
                            info.attr_types.setdefault(
                                target_attr, set()
                            ).add(resolved)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def resolve(self, module: str, dotted: str) -> str:
        """The canonical dotted path of ``dotted`` as seen in ``module``.

        Expands the leading segment through the module's import table,
        prefixes module-local definitions, then chases re-exports
        through facade modules in the model. Unresolvable names come
        back unchanged — callers must treat non-model names as opaque.
        """
        head, _, rest = dotted.partition(".")
        table = self.imports.get(module, {})
        if head in table:
            dotted = table[head] + (f".{rest}" if rest else "")
        elif (
            f"{module}.{head}" in self.functions
            or f"{module}.{head}" in self.classes
        ):
            dotted = f"{module}.{dotted}"
        return self._canonicalize(dotted)

    def _canonicalize(self, dotted: str, _depth: int = 0) -> str:
        if _depth > 10:
            return dotted
        if dotted in self.functions or dotted in self.classes:
            return dotted
        prefix = _longest_module_prefix(dotted, self.model.modules)
        if prefix is None or prefix == dotted:
            return dotted
        rest = dotted[len(prefix) + 1:]
        head, _, tail = rest.partition(".")
        table = self.imports.get(prefix, {})
        if head in table:
            chased = table[head] + (f".{tail}" if tail else "")
            if chased != dotted:
                return self._canonicalize(chased, _depth + 1)
        return dotted

    def mro(self, class_key: str) -> list[ClassInfo]:
        """The class and its model-resolvable bases, nearest first."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self.classes.get(key)
            if info is None:
                continue
            out.append(info)
            stack.extend(info.base_keys)
        return out

    def resolve_method(
        self, class_key: str, name: str
    ) -> FunctionInfo | None:
        """The :class:`FunctionInfo` implementing ``name`` on the class."""
        for info in self.mro(class_key):
            canonical = info.methods.get(name)
            if canonical is not None:
                return self.functions.get(canonical)
        return None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------

    def call_targets(
        self,
        fi: FunctionInfo,
        call: ast.Call,
        env: dict[str, Prov] | None = None,
    ) -> tuple[str, ...]:
        """Canonical names a call might target; ``()`` when unknown."""
        cached = self._call_cache.get(id(call))
        if cached is not None:
            return cached
        targets = tuple(self._resolve_call(fi, call, env))
        self._call_cache[id(call)] = targets
        return targets

    def _resolve_call(
        self,
        fi: FunctionInfo,
        call: ast.Call,
        env: dict[str, Prov] | None,
    ) -> Iterator[str]:
        parts = dotted_parts(call.func)
        if parts is None:
            return
        head = parts[0]
        if head == "self" and fi.class_key is not None:
            if len(parts) == 2:
                method = self.resolve_method(fi.class_key, parts[1])
                yield (
                    method.canonical
                    if method is not None
                    else f"{fi.class_key}.{parts[1]}"
                )
                return
            if len(parts) == 3:
                class_info = self.classes.get(fi.class_key)
                attr_types: set[str] = set()
                for info in self.mro(fi.class_key):
                    attr_types |= info.attr_types.get(parts[1], set())
                del class_info
                for type_key in sorted(attr_types):
                    method = self.resolve_method(type_key, parts[2])
                    yield (
                        method.canonical
                        if method is not None
                        else f"{type_key}.{parts[2]}"
                    )
                return
            return
        if env is None:
            env = self.function_env(fi)
        if len(parts) == 2 and head in env:
            origin = env[head].origin
            if origin.startswith("call:"):
                type_key = origin[5:]
                if type_key in self.classes:
                    method = self.resolve_method(type_key, parts[1])
                    yield (
                        method.canonical
                        if method is not None
                        else f"{type_key}.{parts[1]}"
                    )
                    return
        resolved = self.resolve(fi.module, ".".join(parts))
        if resolved in self.classes:
            init = self.resolve_method(resolved, "__init__")
            yield resolved
            if init is not None:
                yield init.canonical
            return
        yield resolved

    def _function_calls(self, fi: FunctionInfo) -> Iterator[ast.Call]:
        for stmt in body_statements(fi.node):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield node

    def call_sites(self, fi: FunctionInfo) -> Iterator[CallSite]:
        """Every call in ``fi``'s body with its resolved targets."""
        env = self.function_env(fi)
        for call in self._function_calls(fi):
            yield CallSite(
                caller=fi,
                node=call,
                targets=self.call_targets(fi, call, env),
            )

    # ------------------------------------------------------------------
    # provenance (def-use) environments
    # ------------------------------------------------------------------

    def function_env(self, fi: FunctionInfo) -> dict[str, Prov]:
        """``name -> Prov`` over the function body (order-accumulated).

        Keys are local names plus ``self.<attr>`` targets. The pass is
        flow-insensitive (last assignment wins) — precise enough for
        origin classification, cheap enough to run project-wide.
        """
        cached = self._env_cache.get(fi.canonical)
        if cached is not None:
            return cached
        env: dict[str, Prov] = {}
        self._env_cache[fi.canonical] = env  # break recursion cycles
        relpath = fi.source.relpath
        for name in fi.param_names():
            env[name] = Prov(
                origin=f"param:{name}",
                line=fi.node.lineno,
                trail=(
                    WitnessStep(
                        relpath,
                        fi.node.lineno,
                        f"parameter `{name}` of {fi.qualname}()",
                    ),
                ),
            )
        for stmt in body_statements(fi.node):
            if isinstance(stmt, ast.Assign):
                prov = self._expr_prov(fi, stmt.value, env)
                for target in stmt.targets:
                    self._bind_target(fi, target, prov, env, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                prov = self._expr_prov(fi, stmt.value, env)
                self._bind_target(fi, stmt.target, prov, env, stmt.lineno)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    prov = self._expr_prov(fi, item.context_expr, env)
                    prov = Prov(
                        origin=prov.origin,
                        line=prov.line,
                        managed=True,
                        trail=prov.trail,
                    )
                    if item.optional_vars is not None:
                        self._bind_target(
                            fi, item.optional_vars, prov, env, stmt.lineno
                        )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                prov = self._expr_prov(fi, stmt.iter, env)
                self._bind_target(fi, stmt.target, prov, env, stmt.lineno)
        return env

    def _bind_target(
        self,
        fi: FunctionInfo,
        target: ast.expr,
        prov: Prov,
        env: dict[str, Prov],
        line: int,
    ) -> None:
        relpath = fi.source.relpath
        if isinstance(target, ast.Name):
            key: str | None = target.id
        elif _is_self_attr(target):
            key = f"self.{target.attr}"  # type: ignore[union-attr]
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(fi, element, prov, env, line)
            return
        else:
            key = None
        if key is None:
            return
        trail = prov.trail
        if len(trail) < MAX_TRAIL:
            trail = trail + (
                WitnessStep(relpath, line, f"`{key}` bound here"),
            )
        env[key] = Prov(
            origin=prov.origin, line=line, managed=prov.managed, trail=trail
        )

    def _expr_prov(
        self, fi: FunctionInfo, expr: ast.expr, env: dict[str, Prov]
    ) -> Prov:
        relpath = fi.source.relpath
        if isinstance(expr, ast.Name):
            prov = env.get(expr.id)
            if prov is not None:
                return prov
            return Prov(origin="unknown", line=expr.lineno)
        if isinstance(expr, ast.Call):
            targets = self.call_targets(fi, expr, env)
            origin = f"call:{targets[0]}" if targets else "unknown"
            label = targets[0] if targets else "<dynamic>"
            return Prov(
                origin=origin,
                line=expr.lineno,
                trail=(
                    WitnessStep(
                        relpath, expr.lineno, f"produced by {label}()"
                    ),
                ),
            )
        if _is_self_attr(expr):
            key = f"self.{expr.attr}"  # type: ignore[union-attr]
            prov = env.get(key)
            if prov is not None:
                return prov
            if fi.class_key is not None:
                init = self.functions.get(f"{fi.class_key}.__init__")
                if init is not None and init.canonical != fi.canonical:
                    init_env = self.function_env(init)
                    prov = init_env.get(key)
                    if prov is not None:
                        return prov
            return Prov(origin=f"attr:{key}", line=expr.lineno)
        if isinstance(expr, ast.Constant):
            return Prov(origin="const", line=expr.lineno)
        if isinstance(expr, ast.Await):
            return self._expr_prov(fi, expr.value, env)
        if isinstance(expr, ast.IfExp):
            return self._expr_prov(fi, expr.body, env)
        if isinstance(expr, ast.BinOp):
            left = self._expr_prov(fi, expr.left, env)
            if left.origin != "const":
                return left
            return self._expr_prov(fi, expr.right, env)
        if isinstance(expr, ast.Subscript):
            return self._expr_prov(fi, expr.value, env)
        if isinstance(expr, ast.Starred):
            return self._expr_prov(fi, expr.value, env)
        return Prov(origin="unknown", line=getattr(expr, "lineno", 0))

    def expr_prov(
        self,
        fi: FunctionInfo,
        expr: ast.expr,
        env: dict[str, Prov] | None = None,
    ) -> Prov:
        """The provenance of an arbitrary expression in ``fi``'s body."""
        if env is None:
            env = self.function_env(fi)
        return self._expr_prov(fi, expr, env)

    # ------------------------------------------------------------------
    # interprocedural tracing
    # ------------------------------------------------------------------

    def trace_param(
        self,
        fi: FunctionInfo,
        param: str,
        _depth: int = 0,
        _visited: frozenset[str] = frozenset(),
    ) -> list[tuple[Prov, tuple[WitnessStep, ...]]]:
        """Where values flowing into ``fi(param=...)`` come from.

        Walks the caller index: every resolved call site's matching
        argument expression is classified in *its* function's
        environment; arguments that are themselves parameters recurse
        one level up (bounded by :data:`MAX_TRACE_DEPTH`). Returns
        ``(origin, witness chain)`` pairs; call sites that cannot be
        mapped degrade to nothing rather than to a false origin.
        """
        key = f"{fi.canonical}::{param}"
        if _depth > MAX_TRACE_DEPTH or key in _visited:
            return []
        results: list[tuple[Prov, tuple[WitnessStep, ...]]] = []
        for caller, call in self.callers.get(fi.canonical, []):
            arg = _argument_for(call, fi, param)
            if arg is None:
                continue
            hop = WitnessStep(
                caller.source.relpath,
                call.lineno,
                f"{caller.qualname}() passes `{param}` to {fi.qualname}()",
            )
            prov = self._expr_prov(caller, arg, self.function_env(caller))
            if prov.origin.startswith("param:"):
                upstream = self.trace_param(
                    caller,
                    prov.origin[6:],
                    _depth + 1,
                    _visited | {key},
                )
                for origin, chain in upstream:
                    results.append((origin, chain + (hop,)))
                continue
            results.append((prov, prov.trail + (hop,)))
        return results


def get_dataflow(model: ProjectModel) -> DataflowModel:
    """The (memoised) :class:`DataflowModel` of a project model."""
    cached = getattr(model, "_dataflow", None)
    if cached is None:
        cached = DataflowModel(model)
        model._dataflow = cached  # type: ignore[attr-defined]
    return cached


def _import_base(node: ast.ImportFrom, importer: str) -> str | None:
    if not node.level:
        return node.module
    parts = importer.split(".")
    # ``importer`` is the module itself; level 1 means its package.
    anchor = parts[: len(parts) - node.level]
    if not anchor:
        return node.module
    if node.module:
        anchor.append(node.module)
    return ".".join(anchor)


def _longest_module_prefix(
    dotted: str, modules: dict[str, SourceFile]
) -> str | None:
    parts = dotted.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in modules:
            return candidate
    return None


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _candidate_calls(value: ast.expr | None) -> Iterator[ast.Call]:
    """Calls an attribute assignment's RHS might evaluate to."""
    if value is None:
        return
    if isinstance(value, ast.Call):
        yield value
    elif isinstance(value, ast.IfExp):
        yield from _candidate_calls(value.body)
        yield from _candidate_calls(value.orelse)
    elif isinstance(value, ast.BoolOp):
        for operand in value.values:
            yield from _candidate_calls(operand)


def _param_annotation(
    node: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> ast.expr | None:
    for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
        if arg.arg == name:
            return arg.annotation
    return None


def _unquote_annotation(annotation: ast.expr | None) -> ast.expr | None:
    """A string forward-reference annotation parsed back to an expr."""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            return ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    return annotation


def _argument_for(
    call: ast.Call, fi: FunctionInfo, param: str
) -> ast.expr | None:
    """The argument expression feeding ``param`` at this call site."""
    for keyword in call.keywords:
        if keyword.arg == param:
            return keyword.value
    params = fi.param_names()
    if params and params[0] == "self":
        receiver = dotted_parts(call.func)
        # Bound calls (``obj.method(...)``) do not pass self explicitly.
        if receiver is not None and len(receiver) > 1:
            params = params[1:]
    try:
        index = params.index(param)
    except ValueError:
        return None
    positional = [a for a in call.args if not isinstance(a, ast.Starred)]
    if len(positional) != len(call.args):
        return None  # *args splat: positions unknowable
    if index < len(positional):
        return positional[index]
    return None


def parent_map(root: ast.AST) -> dict[int, ast.AST]:
    """``id(child) -> parent`` over every node beneath ``root``."""
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def tier_annotation(
    source: SourceFile, node: ast.stmt, tag: str = "tier"
) -> str | None:
    """The ``# repro: tier[...]`` annotation on a statement header.

    Scans the header span (decorators through the ``def`` line) plus the
    line directly above for ``# repro: <tag>[value]`` and returns the
    bracketed value, or ``None``.
    """
    pattern = re.compile(
        rf"#\s*repro:\s*{re.escape(tag)}\[([^\]]+)\]"
    )
    start, end = header_span(node)
    for line_number in range(max(1, start - 1), end + 1):
        if line_number <= len(source.lines):
            match = pattern.search(source.lines[line_number - 1])
            if match is not None:
                return match.group(1).strip()
    return None

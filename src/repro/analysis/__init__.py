"""Static invariant analysis: ``python -m repro check``.

A pluggable AST-based analyzer enforcing the invariants the test suite
can only sample: determinism (seeded randomness, no wall-clock reads),
layering (the declared package DAG, cycle-free), lock discipline
(consistent ``with self._lock`` guarding), exception hygiene (no
silently swallowed failures), and docs integrity (docstring coverage,
intra-repo markdown links).

Entry points:

- :func:`~repro.analysis.runner.run_check` — programmatic API (the
  tier-1 gate and the CLI both call it);
- ``python -m repro check [--format text|json] [--rule id] [paths]`` —
  the command-line front end (exit 1 on any surviving finding);
- ``# repro: allow[rule-id] — justification`` — inline suppression;
- ``repro check --write-baseline`` — grandfather an existing backlog.

See ``docs/static-analysis.md`` for the rule catalogue and the guide to
adding a rule. Everything in this package is stdlib-only so the shimmed
doc checkers keep running in dependency-free CI jobs.
"""

from __future__ import annotations

from repro.analysis.dataflow import (
    DataflowModel,
    WitnessStep,
    get_dataflow,
)
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.model import ProjectModel, SourceFile, build_project
from repro.analysis.rules import (
    DeterminismRule,
    DocstringRule,
    DtypeTierRule,
    ExceptionHygieneRule,
    LayeringRule,
    LayerSpec,
    LinkRule,
    LockDisciplineRule,
    LockOrderRule,
    ResourceLifetimeRule,
    Rule,
    SeedLineageRule,
    default_rules,
)
from repro.analysis.runner import CheckResult, explain_finding, run_check
from repro.analysis.suppress import load_baseline, write_baseline

__all__ = [
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "ProjectModel",
    "SourceFile",
    "build_project",
    "DataflowModel",
    "WitnessStep",
    "get_dataflow",
    "Rule",
    "DeterminismRule",
    "LayeringRule",
    "LayerSpec",
    "LockDisciplineRule",
    "LockOrderRule",
    "SeedLineageRule",
    "DtypeTierRule",
    "ResourceLifetimeRule",
    "ExceptionHygieneRule",
    "DocstringRule",
    "LinkRule",
    "default_rules",
    "CheckResult",
    "explain_finding",
    "run_check",
    "load_baseline",
    "write_baseline",
]

"""The shared project model every rule walks.

One :class:`ProjectModel` is built per ``repro check`` run: each Python
file under the analyzed paths is read and parsed exactly once into a
:class:`SourceFile` (text, lines, ``ast`` tree, dotted module name), and
the module-level import graph — the input of the layering rule — is
derived lazily from the same trees. Rules therefore never re-read or
re-parse anything, which keeps a whole-``src/`` run fast enough for
tier-1.

Module names are inferred structurally: the package root of a file is
the highest ancestor directory chain where every level carries an
``__init__.py``. ``src/repro/core/bpr.py`` becomes ``repro.core.bpr``
without any hard-coded source root, so fixture trees in tests model
exactly like the real package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Directories never collected when expanding an analyzed path.
SKIP_DIRS = {
    ".git",
    ".pytest_cache",
    "__pycache__",
    "node_modules",
    ".hypothesis",
}


@dataclass
class SourceFile:
    """One parsed Python file of the analyzed project."""

    path: Path
    relpath: str
    module: str
    text: str
    lines: list[str] = field(repr=False)
    tree: ast.Module = field(repr=False)


class ProjectModel:
    """Every analyzed file plus the derived module import graph."""

    def __init__(self, root: Path, files: list[SourceFile]) -> None:
        self.root = root
        self.files = files
        self.modules: dict[str, SourceFile] = {
            source.module: source for source in files
        }
        self._import_graph: dict[str, list[tuple[str, int]]] | None = None

    def import_graph(self) -> dict[str, list[tuple[str, int]]]:
        """``module -> [(imported module, line), ...]`` over model modules.

        Only imports that resolve to another module *in the model* (or to
        a parent package of one) appear; stdlib and third-party imports
        are not layering facts and are dropped. Imports guarded by
        ``if TYPE_CHECKING:`` are dropped too — they never execute, so
        they create neither runtime layering edges nor runtime cycles
        (annotation-only back-references are the sanctioned way to type
        a lower-layer module against a higher one).
        """
        if self._import_graph is None:
            self._import_graph = {
                source.module: sorted(set(_module_imports(source, self)))
                for source in self.files
            }
        return self._import_graph


def _is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` guard is the ``TYPE_CHECKING`` idiom."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _runtime_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """Walk ``tree`` skipping bodies that never execute at runtime.

    An ``if TYPE_CHECKING:`` body is evaluated only by type checkers,
    so imports inside it are annotation-only facts, not runtime edges;
    its ``else`` branch, if any, does run and is still walked.
    """
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            stack.extend(node.orelse)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _module_imports(
    source: SourceFile, model: ProjectModel
) -> Iterator[tuple[str, int]]:
    known = model.modules
    prefixes = {module.split(".", 1)[0] for module in known}
    for node in _runtime_nodes(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = _resolve(alias.name, known, prefixes)
                if target is not None:
                    yield target, node.lineno
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_base(node, source.module)
            if base is None:
                continue
            for alias in node.names:
                target = _resolve(
                    f"{base}.{alias.name}", known, prefixes
                ) or _resolve(base, known, prefixes)
                if target is not None:
                    yield target, node.lineno


def _absolute_base(node: ast.ImportFrom, importer: str) -> str | None:
    """The absolute module a ``from ... import`` pulls names from."""
    if not node.level:
        return node.module
    parts = importer.split(".")
    # level 1 = the importer's own package, each further level one up.
    anchor = parts[: len(parts) - node.level]
    if not anchor:
        return node.module
    if node.module:
        anchor.append(node.module)
    return ".".join(anchor)


def _resolve(
    name: str, known: dict[str, SourceFile], prefixes: set[str]
) -> str | None:
    """Map an imported dotted name onto a model module, or ``None``.

    ``from repro.eval import grid`` resolves to ``repro.eval.grid`` when
    that module is in the model, else to the package ``repro.eval``
    itself. Names whose top-level package is foreign to the model are
    dropped.
    """
    if name in known:
        return name
    if name.split(".", 1)[0] not in prefixes:
        return None
    while "." in name:
        name = name.rsplit(".", 1)[0]
        if name in known:
            return name
    return None


def module_name(path: Path) -> str:
    """The dotted module name of ``path``, inferred from ``__init__.py``s."""
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def collect_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


def build_project(paths: Iterable[Path | str], root: Path) -> ProjectModel:
    """Parse every Python file under ``paths`` into a :class:`ProjectModel`.

    Raises:
        SyntaxError: when a file under analysis does not parse — a broken
            tree cannot be checked, so this is a hard error, not a
            finding.
    """
    root = Path(root).resolve()
    files: list[SourceFile] = []
    for path in collect_python_files(Path(p) for p in paths):
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        resolved = path.resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            relpath = resolved.as_posix()
        files.append(
            SourceFile(
                path=resolved,
                relpath=relpath,
                module=module_name(resolved),
                text=text,
                lines=text.splitlines(),
                tree=tree,
            )
        )
    return ProjectModel(root, files)

"""Stdlib-only atomic writes for the analyzer's own artefacts.

The sanctioned project-wide write path is
:func:`repro.resilience.artefacts.atomic_write`, but importing it pulls
in the whole ``repro.resilience`` package — and ``resilience.retry``
imports numpy at module level, which the dependency-free docs CI job
does not have. The analysis package must stay importable there, so this
module re-implements the same temp-file + fsync + rename sequence with
nothing but the stdlib (no fault-injection hooks; the analyzer is not
under chaos testing).

The ``resource-lifetime`` rule treats this module as a sanctioned write
implementation, exactly like the artefacts module itself.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_write(
    path: Path, mode: str = "w", encoding: str | None = None
) -> Iterator[IO]:
    """Write ``path`` atomically: temp file, fsync, then rename over.

    A crash at any point leaves either the previous file or nothing —
    never a torn write under the final name.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    handle = tmp.open(mode, encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, path)
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise

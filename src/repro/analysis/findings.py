"""The :class:`Finding` record every analysis rule reports.

A finding pins one invariant violation to a file and line. Findings are
value objects: rules yield them, the runner sorts, de-duplicates,
suppresses (inline pragma or baseline), and renders them. The
*fingerprint* — ``rule::path::message``, deliberately line-free — is the
identity used by the baseline file, so grandfathered findings survive
unrelated edits that shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.analysis.dataflow import WitnessStep

#: A finding that must fail the build.
SEVERITY_ERROR = "error"

#: A finding reported but advisory (reserved for future rules).
SEVERITY_WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at ``path:line``, reported by ``rule``."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR
    #: The dataflow path behind the finding (``--explain`` / SARIF
    #: relatedLocations). Excluded from equality/ordering so identical
    #: findings still de-duplicate whatever trail produced them.
    witness: "tuple[WitnessStep, ...]" = field(default=(), compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.message}"

    def as_dict(self) -> dict:
        """A JSON-serialisable view (the ``--format json`` entry)."""
        payload = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }
        if self.witness:
            payload["witness"] = [
                {"path": step.path, "line": step.line, "note": step.note}
                for step in self.witness
            ]
        return payload

    def render(self) -> str:
        """The one-line text form: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

"""Experiment configuration and scale presets.

The paper's merged dataset is 2 332 books × 43 531 users × ~1 M readings.
Three presets trade fidelity for runtime:

- ``small`` — seconds; used by the test suite and quick sanity runs.
- ``default`` — tens of seconds; the documented results in EXPERIMENTS.md
  come from this scale. Keeps the paper's catalogue-to-holdout ratio so the
  baseline KPI magnitudes land near the published ones.
- ``paper`` — minutes; full published dataset dimensions (6 079 BCT +
  37 452 Anobii users).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.bpr import BPRConfig
from repro.datasets.world import WorldConfig
from repro.errors import ConfigurationError
from repro.pipeline.merge import MergeConfig
from repro.rng import DEFAULT_SEED


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment run depends on."""

    scale: str = "default"
    seed: int = DEFAULT_SEED
    k: int = 20
    world: WorldConfig = field(default_factory=WorldConfig)
    merge: MergeConfig = field(default_factory=lambda: MergeConfig(min_book_readings=20))
    bpr: BPRConfig = field(default_factory=BPRConfig)
    closest_fields: tuple[str, ...] = ("author", "genres")
    n_jobs: int = 1
    """Worker count for the parallel-capable stages (merge pipeline,
    hyper-parameter grid search); ``1`` = serial, ``-1`` = all CPUs.
    Results are bit-identical for every value (see ``repro.parallel``)."""

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """The same configuration with a different world seed."""
        return replace(self, seed=seed, world=replace(self.world, seed=seed))


def _small() -> ExperimentConfig:
    return ExperimentConfig(
        scale="small",
        world=WorldConfig(
            n_books=400,
            n_authors=160,
            n_bct_users=160,
            n_anobii_users=900,
        ),
        merge=MergeConfig(min_user_readings=10, min_book_readings=8),
        bpr=BPRConfig(epochs=8),
    )


def _default() -> ExperimentConfig:
    return ExperimentConfig(scale="default")


def _paper() -> ExperimentConfig:
    return ExperimentConfig(
        scale="paper",
        world=WorldConfig(
            n_books=4300,
            n_authors=1300,
            n_bct_users=6079,
            n_anobii_users=37452,
        ),
        merge=MergeConfig(min_user_readings=10, min_book_readings=100),
        bpr=BPRConfig(),
    )


SCALES = {
    "small": _small,
    "default": _default,
    "paper": _paper,
}


def config_for_scale(
    scale: str,
    seed: int | None = None,
    n_jobs: int | None = None,
    train_kernel: str | None = None,
    train_workers: int | None = None,
) -> ExperimentConfig:
    """Build the preset for ``scale``, optionally reseeded/parallelised.

    ``train_kernel``/``train_workers`` override the BPR training tier
    (see :class:`~repro.core.bpr.BPRConfig`): the float64 ``reference``
    kernel is the default everywhere so recorded EXPERIMENTS.md numbers
    stay bit-stable; pass ``train_kernel="fast"`` (optionally with
    ``train_workers > 1`` for HogWild) to trade bit-identity for speed.
    """
    if scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    config = SCALES[scale]()
    if seed is not None:
        config = config.with_seed(seed)
    if n_jobs is not None:
        config = replace(config, n_jobs=n_jobs)
    bpr_overrides = {}
    if train_kernel is not None:
        bpr_overrides["kernel"] = train_kernel
    if train_workers is not None:
        bpr_overrides["workers"] = train_workers
    if bpr_overrides:
        config = replace(config, bpr=replace(config.bpr, **bpr_overrides))
    return config

"""Design-choice ablations beyond the paper's published experiments.

Three questions the reproduction can answer that the paper does not:

- ``sampler`` — what does WARP's rank-weighted sampling buy over uniform
  BPR negatives? (The paper chose WARP citing Weston et al.)
- ``anobii`` — the paper shows the merged dataset beats BCT-only for BPR
  and attributes CB quality to Anobii metadata; this ablation separates
  the two contributions (extra readings vs richer metadata).
- ``embedder`` — what does TF-IDF weighting contribute to the SBERT
  substitute? (Plain hashed counts vs IDF-weighted.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bpr import BPR
from repro.core.closest_items import ClosestItems
from repro.eval.evaluator import fit_and_evaluate
from repro.eval.metrics import KPIReport
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table
from repro.text.embedder import HashedCountEmbedder


@dataclass(frozen=True)
class AblationResult:
    """Named KPI rows for one ablation table."""

    title: str
    k: int
    rows: dict[str, KPIReport]

    def render(self) -> str:
        table_rows = [
            [name, r.urr, r.nrr, r.precision, r.recall, round(r.first_rank)]
            for name, r in self.rows.items()
        ]
        return f"{self.title} (k={self.k})\n" + ascii_table(
            ["variant", "URR", "NRR", "P", "R", "FR"], table_rows
        )


def run_sampler_ablation(context: ExperimentContext) -> AblationResult:
    """WARP versus uniform negative sampling for BPR."""
    k = context.config.k
    rows = {"warp (paper)": context.evaluation("bpr").report(k)}
    uniform = BPR(
        replace(context.config.bpr, sampler="uniform", seed=context.config.seed)
    )
    result = fit_and_evaluate(
        uniform, context.split, context.merged, ks=(k,)
    )
    rows["uniform"] = result.report(k)
    return AblationResult(
        title="Ablation: BPR negative sampler", k=k, rows=rows
    )


def run_anobii_ablation(context: ExperimentContext) -> AblationResult:
    """Separate Anobii's two contributions: readings (CF) and metadata (CB).

    - BPR merged vs BPR BCT-only isolates the extra *readings*;
    - Closest with author+genres (Anobii-enriched) vs title+author (the
      only fields BCT itself carries) isolates the extra *metadata*.
    """
    k = context.config.k
    rows = {
        "BPR, merged readings": context.evaluation("bpr").report(k),
        "BPR, BCT readings only": context.evaluation("bpr_bct_only").report(k),
        "Closest, anobii metadata (author+genres)": context.evaluation(
            "closest:author,genres"
        ).report(k),
        "Closest, BCT metadata only (title+author)": context.evaluation(
            "closest:title,author"
        ).report(k),
    }
    return AblationResult(
        title="Ablation: value of the Anobii integration", k=k, rows=rows
    )


def run_embedder_ablation(context: ExperimentContext) -> AblationResult:
    """TF-IDF weighting versus plain hashed counts in the CB embedder."""
    k = context.config.k
    rows = {"hashed tf-idf (default)": context.evaluation("closest").report(k)}
    plain = ClosestItems(
        fields=context.config.closest_fields,
        embedder=HashedCountEmbedder(),
    )
    result = fit_and_evaluate(plain, context.split, context.merged, ks=(k,))
    rows["hashed counts (no idf)"] = result.report(k)
    return AblationResult(
        title="Ablation: CB embedder weighting", k=k, rows=rows
    )


def run(context: ExperimentContext) -> tuple[AblationResult, ...]:
    """All three ablations."""
    return (
        run_sampler_ablation(context),
        run_anobii_ablation(context),
        run_embedder_ablation(context),
    )

"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Sequence


def format_value(value: object, precision: int = 2) -> str:
    """Render one cell: floats to ``precision``, everything else via str."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
) -> str:
    """A minimal aligned text table, in the spirit of the paper's tables."""
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = [line([str(h) for h in headers])]
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def series_block(name: str, xs: Sequence[object], ys: Sequence[float],
                 precision: int = 3) -> str:
    """Render one figure series as an ``x -> y`` listing."""
    pairs = "  ".join(
        f"{format_value(x, 0)}:{format_value(float(y), precision)}"
        for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


#: Symbols assigned to chart series, in declaration order.
CHART_SYMBOLS = "*o+x#@"


def ascii_chart(
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    height: int = 12,
    title: str = "",
) -> str:
    """A multi-series text line chart (the figure panels, in a terminal).

    Each series is drawn with its own symbol at the x positions of ``xs``;
    the y axis is annotated with min/max, and a legend maps symbols to
    series names. Coinciding points show the later series' symbol.
    """
    if not series or not xs:
        raise ValueError("ascii_chart needs at least one series and one x")
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} points for {len(xs)} xs"
            )

    all_values = [float(v) for values in series.values() for v in values]
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    column_width = max(max(len(str(x)) for x in xs) + 1, 3)
    grid = [
        [" " for _ in range(len(xs) * column_width)] for _ in range(height)
    ]
    for (name, values), symbol in zip(series.items(), CHART_SYMBOLS):
        for i, value in enumerate(values):
            row = height - 1 - int((float(value) - low) / span * (height - 1))
            grid[row][i * column_width + column_width // 2] = symbol

    axis_width = max(len(f"{high:.2f}"), len(f"{low:.2f}"))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{high:.2f}".rjust(axis_width)
        elif row_index == height - 1:
            label = f"{low:.2f}".rjust(axis_width)
        else:
            label = " " * axis_width
        lines.append(f"{label} |{''.join(row)}")
    ticks = "".join(str(x).center(column_width) for x in xs)
    lines.append(" " * axis_width + " +" + "-" * len(ticks))
    lines.append(" " * axis_width + "  " + ticks)
    legend = "  ".join(
        f"{symbol}={name}"
        for (name, _), symbol in zip(series.items(), CHART_SYMBOLS)
    )
    lines.append(" " * axis_width + "  " + legend)
    return "\n".join(lines)

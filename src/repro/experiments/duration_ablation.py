"""Ablation: using loan duration as implicit negative feedback.

The paper assumes "if a user read a book, it is appreciated" and flags the
loan duration as the feature that could fix that assumption's failure mode
("we leave for future work a study of possible features to reduce the
limitations of this assumption, e.g., using the duration of the loan").

This experiment implements it: BCT loans returned within ``min_loan_days``
are treated as abandoned (negative implicit feedback) and removed before
the merge, then the Table-1 systems are retrained. On the synthetic world
— where quick returns are, by construction, off-preference books — the
filter removes label noise and the personalised models improve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bpr import BPR
from repro.core.closest_items import ClosestItems
from repro.eval.evaluator import fit_and_evaluate
from repro.eval.metrics import KPIReport
from repro.eval.split import split_readings
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table
from repro.pipeline.merge import build_merged_dataset

#: Loans shorter than this many days count as "abandoned" in the filtered
#: variant (just above the synthetic abandonment band).
DEFAULT_MIN_LOAN_DAYS = 7


@dataclass(frozen=True)
class DurationAblationResult:
    """KPIs with and without the loan-duration filter."""

    k: int
    min_loan_days: int
    unfiltered: dict[str, KPIReport]
    filtered: dict[str, KPIReport]
    loans_removed_share: float

    def render(self) -> str:
        rows = []
        for name in self.unfiltered:
            u = self.unfiltered[name]
            f = self.filtered[name]
            rows.append([name, u.urr, u.nrr, f.urr, f.nrr])
        header = (
            f"Ablation: loan-duration filter (k={self.k}; drop loans "
            f"< {self.min_loan_days} days — the paper's future-work "
            f"feature)\nremoved {self.loans_removed_share * 100:.1f}% of "
            "BCT loan events as abandoned\n"
        )
        return header + ascii_table(
            ["system", "URR (all loans)", "NRR (all loans)",
             "URR (filtered)", "NRR (filtered)"],
            rows,
        )


def run(
    context: ExperimentContext,
    min_loan_days: int = DEFAULT_MIN_LOAN_DAYS,
) -> DurationAblationResult:
    k = context.config.k
    unfiltered = {
        "Closest Items": context.evaluation("closest").report(k),
        "BPR": context.evaluation("bpr").report(k),
    }

    sources = context.sources
    filtered_merged, _ = build_merged_dataset(
        sources.bct, sources.anobii,
        replace(context.config.merge, min_loan_days=min_loan_days),
    )
    filtered_split = split_readings(filtered_merged)
    filtered: dict[str, KPIReport] = {}
    for name, model in (
        ("Closest Items", ClosestItems(fields=context.config.closest_fields)),
        ("BPR", BPR(context.config.bpr)),
    ):
        filtered[name] = fit_and_evaluate(
            model, filtered_split, filtered_merged, ks=(k,)
        ).report(k)

    bct_mask = context.merged.readings["source"] == "bct"
    before = int(bct_mask.sum())
    after_mask = filtered_merged.readings["source"] == "bct"
    after = int(after_mask.sum())
    removed_share = 1.0 - after / before if before else 0.0
    return DurationAblationResult(
        k=k,
        min_loan_days=min_loan_days,
        unfiltered=unfiltered,
        filtered=filtered,
        loans_removed_share=removed_share,
    )

"""Fig. 5 — KPIs per metadata-summary composition (Closest Items ablation).

The paper evaluates the content-based model with different concatenations
of the book metadata. Findings reproduced here:

- title alone ≈ Random (titles carry no preference signal);
- plot or keywords alone are better (they encode genre vocabulary);
- author alone improves sharply (readers follow authors);
- author + genres is the best combination;
- adding keywords to author + genres slightly hurts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.metrics import KPIReport
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table

#: The compositions shown in the paper's Fig. 5 bars, plus the
#: author+genres+keywords variant mentioned in the text.
COMPOSITIONS: tuple[tuple[str, ...], ...] = (
    ("title",),
    ("plot",),
    ("keywords",),
    ("author",),
    ("genres",),
    ("author", "genres"),
    ("author", "genres", "keywords"),
)


@dataclass(frozen=True)
class Fig5Result:
    """KPIs per metadata composition at the configured k."""

    k: int
    rows: dict[tuple[str, ...], KPIReport]

    def render(self) -> str:
        table_rows = []
        for fields in COMPOSITIONS:
            report = self.rows[fields]
            table_rows.append(
                ["+".join(fields), report.urr, report.nrr,
                 report.precision, report.recall, round(report.first_rank)]
            )
        header = (
            f"Fig. 5: Closest Items KPIs per metadata summary (k={self.k})\n"
        )
        return header + ascii_table(
            ["summary", "URR", "NRR", "P", "R", "FR"], table_rows
        )

    def best(self) -> tuple[str, ...]:
        """The composition maximising URR (ties broken by NRR)."""
        return max(
            self.rows, key=lambda f: (self.rows[f].urr, self.rows[f].nrr)
        )


def run(
    context: ExperimentContext,
    compositions: tuple[tuple[str, ...], ...] = COMPOSITIONS,
) -> Fig5Result:
    k = context.config.k
    rows = {}
    for fields in compositions:
        key = "closest:" + ",".join(fields)
        rows[fields] = context.evaluation(key).report(k)
    return Fig5Result(k=k, rows=rows)

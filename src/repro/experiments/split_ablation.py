"""Ablation: temporal versus random per-user splitting.

The paper holds out each BCT user's readings without stating the order;
this reproduction defaults to a *temporal* split (most recent readings are
the test set), which is both the deployed semantics — predict the next
loans — and, as this ablation shows, load-bearing for Table 1's baseline
ordering: under a random split the global bestsellers leak into test sets
and the Most Read Items baseline jumps above Random, while the temporal
split reproduces the paper's Most Read < Random inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bpr import BPR
from repro.core.closest_items import ClosestItems
from repro.core.most_read import MostReadItems
from repro.core.random_items import RandomItems
from repro.eval.evaluator import fit_and_evaluate
from repro.eval.metrics import KPIReport
from repro.eval.split import SplitConfig, split_readings
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table

SYSTEMS = ("Random Items", "Most Read Items", "Closest Items", "BPR")


@dataclass(frozen=True)
class SplitAblationResult:
    """KPIs per system under each split order."""

    k: int
    temporal: dict[str, KPIReport]
    random_order: dict[str, KPIReport]

    def render(self) -> str:
        rows = []
        for name in SYSTEMS:
            t = self.temporal[name]
            r = self.random_order[name]
            rows.append([name, t.urr, t.nrr, r.urr, r.nrr])
        header = (
            f"Ablation: temporal vs random per-user split (k={self.k})\n"
            "temporal = paper protocol (most recent readings held out)\n"
        )
        return header + ascii_table(
            ["system", "URR (temporal)", "NRR (temporal)",
             "URR (random)", "NRR (random)"],
            rows,
        )


def run(context: ExperimentContext) -> SplitAblationResult:
    k = context.config.k
    temporal = {
        "Random Items": context.evaluation("random").report(k),
        "Most Read Items": context.evaluation("most_read").report(k),
        "Closest Items": context.evaluation("closest").report(k),
        "BPR": context.evaluation("bpr").report(k),
    }
    shuffled_split = split_readings(
        context.merged, SplitConfig(order="random", seed=context.config.seed)
    )
    random_order: dict[str, KPIReport] = {}
    for name, model in (
        ("Random Items", RandomItems(seed=context.config.seed)),
        ("Most Read Items", MostReadItems()),
        ("Closest Items", ClosestItems(fields=context.config.closest_fields)),
        ("BPR", BPR(context.config.bpr)),
    ):
        random_order[name] = fit_and_evaluate(
            model, shuffled_split, context.merged, ks=(k,)
        ).report(k)
    return SplitAblationResult(
        k=k, temporal=temporal, random_order=random_order
    )

"""Table 1 — KPIs of all five systems at k = 20.

Paper values for reference (their data; ours reproduces the ordering and
relative gaps, not the absolute numbers):

=================  ====  ====  ====  ====  ===
system             URR   NRR   P     R     FR
=================  ====  ====  ====  ====  ===
Random Items       0.07  0.07  0.00  0.01  370
Most Read Items    0.03  0.03  0.00  0.01  556
Closest Items      0.22  0.29  0.01  0.05  186
BPR                0.26  0.35  0.02  0.08  130
BPR (BCT only)     0.15  0.17  0.01  0.04  298
=================  ====  ====  ====  ====  ===
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.bootstrap import PairedComparison, paired_bootstrap_difference
from repro.eval.metrics import KPIReport
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table

#: Display name, context model key — Table 1's row order.
SYSTEMS = (
    ("Random Items", "random"),
    ("Most Read Items", "most_read"),
    ("Closest Items", "closest"),
    ("BPR", "bpr"),
    ("BPR (BCT only)", "bpr_bct_only"),
)


@dataclass(frozen=True)
class Table1Result:
    """KPIs per system at the configured k, plus the CF-vs-CB significance
    check (paired bootstrap over users — an addition to the paper, which
    reports point estimates only)."""

    k: int
    rows: dict[str, KPIReport]
    bpr_vs_closest: tuple[PairedComparison, ...] = ()

    def render(self) -> str:
        table_rows = []
        for name, _ in SYSTEMS:
            report = self.rows[name]
            table_rows.append(
                [name, report.urr, report.nrr, report.precision,
                 report.recall, round(report.first_rank)]
            )
        header = f"Table 1: KPIs of the different RecSys with k={self.k}\n"
        body = header + ascii_table(
            ["system", "URR", "NRR", "P", "R", "FR"], table_rows
        )
        if self.bpr_vs_closest:
            body += "\npaired bootstrap (addition to the paper):"
            for comparison in self.bpr_vs_closest:
                body += f"\n  {comparison}"
        return body


def run(context: ExperimentContext) -> Table1Result:
    """Evaluate every Table-1 system on the test holdout."""
    k = context.config.k
    rows = {
        name: context.evaluation(key).report(k) for name, key in SYSTEMS
    }
    comparisons = tuple(
        paired_bootstrap_difference(
            context.evaluation("bpr"),
            context.evaluation("closest"),
            metric,
            k,
            seed=context.config.seed,
        )
        for metric in ("urr", "nrr")
    )
    return Table1Result(k=k, rows=rows, bpr_vs_closest=comparisons)

"""Section 6 ¶1 — the BPR hyper-parameter grid search.

The paper sweeps the number of latent factors and the learning rate,
keeping the pair that maximises URR on the validation set; it reports 20
factors and a 0.2 learning rate as the winner. Our plain-SGD trainer finds
the same factor count; its optimal learning rate is smaller (0.05) because
the paper's LightFM-style trainer applies adagrad step scaling (nominal
rates are not comparable across optimisers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.eval.grid import GridSearchResult, grid_search_bpr
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table

FACTOR_GRID = (5, 10, 20, 40)
LEARNING_RATE_GRID = (0.02, 0.05, 0.1, 0.2)

#: Reduced grid used at the ``small`` scale so the bench stays fast.
SMALL_FACTOR_GRID = (10, 20)
SMALL_LEARNING_RATE_GRID = (0.05, 0.2)


@dataclass(frozen=True)
class GridsearchResult:
    """The full grid plus the winner."""

    grid: GridSearchResult

    def render(self) -> str:
        matrix = self.grid.as_matrix()
        factors = sorted({f for f, _ in matrix})
        rates = sorted({lr for _, lr in matrix})
        rows = [
            [f"L={f}"] + [matrix[(f, lr)] for lr in rates] for f in factors
        ]
        best = self.grid.best
        header = (
            f"Grid search: validation URR@{self.grid.k} per "
            f"(latent factors x learning rate)\n"
            f"best: L={best.n_factors}, lr={best.learning_rate} "
            f"(URR={best.val_urr:.3f})\n"
        )
        return header + ascii_table(
            ["factors \\ lr"] + [str(lr) for lr in rates], rows, precision=3
        )


def run(context: ExperimentContext) -> GridsearchResult:
    small = context.config.scale == "small"
    grid = grid_search_bpr(
        context.split,
        context.merged,
        base_config=replace(context.config.bpr, seed=context.config.seed),
        factor_grid=SMALL_FACTOR_GRID if small else FACTOR_GRID,
        learning_rate_grid=(
            SMALL_LEARNING_RATE_GRID if small else LEARNING_RATE_GRID
        ),
        k=context.config.k,
        n_jobs=context.config.n_jobs,
    )
    return GridsearchResult(grid=grid)

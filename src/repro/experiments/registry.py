"""Name -> experiment dispatch used by the CLI."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    duration_ablation,
    extensions,
    split_ablation,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    gridsearch,
    table1,
    table2,
)
from repro.experiments.context import ExperimentContext

_EXPERIMENTS: dict[str, Callable[[ExperimentContext], object]] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "table1": table1.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "table2": table2.run,
    "gridsearch": gridsearch.run,
    "beyond_accuracy": extensions.run_beyond_accuracy,
    "sequential": extensions.run_sequential,
    "ablation_split": split_ablation.run,
    "ablation_duration": duration_ablation.run,
}


def available_experiments() -> tuple[str, ...]:
    """All runnable experiment names (ablations are addressed individually)."""
    return tuple(sorted(_EXPERIMENTS)) + (
        "ablation_sampler", "ablation_anobii", "ablation_embedder",
    )


def run_experiment(name: str, context: ExperimentContext) -> object:
    """Run one experiment by name; the result has a ``render()`` method."""
    if name in _EXPERIMENTS:
        return _EXPERIMENTS[name](context)
    if name == "ablation_sampler":
        return ablations.run_sampler_ablation(context)
    if name == "ablation_anobii":
        return ablations.run_anobii_ablation(context)
    if name == "ablation_embedder":
        return ablations.run_embedder_ablation(context)
    raise ConfigurationError(
        f"unknown experiment {name!r}; available: {available_experiments()}"
    )

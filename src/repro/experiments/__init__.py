"""Experiment harness: one module per table/figure of the paper.

Every experiment follows the same contract: ``run(context)`` takes an
:class:`~repro.experiments.context.ExperimentContext` (which caches the
generated dataset, the split, and fitted models so experiments sharing a
workload do not refit) and returns a result object with a ``render()``
method producing the table/series the paper prints.

Experiment index (see DESIGN.md for the full mapping):

========== ===========================================================
``fig1``    CDFs of readings per user and per book
``fig2``    genre shares of readings
``table1``  URR/NRR/P/R/FR at k=20 for all five systems
``fig3``    URR/NRR and P/R versus the number of recommended books k
``fig4``    NRR by training-history size
``fig5``    KPIs per metadata-summary composition
``table2``  training and recommendation wall-clock time
``gridsearch`` BPR hyper-parameter grid (validation URR)
``ablation_*`` design-choice ablations (sampler, Anobii value, embedder
            weighting, split protocol, loan-duration filter)
``beyond_accuracy`` future work: diversity/novelty/serendipity/coverage
``sequential``      future work: Markov-chain sequential recommendation
========== ===========================================================
"""

from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import available_experiments, run_experiment

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "ExperimentContext",
    "available_experiments",
    "run_experiment",
]

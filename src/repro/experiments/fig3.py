"""Fig. 3 — KPIs versus the number of recommended books k.

Fig. 3a plots URR and NRR, Fig. 3b Precision and Recall, for k in [1, 50]
and the Random Items, Closest Items, and BPR systems. The expected shapes:
URR, NRR, and Recall grow with k; Precision falls; the model ordering
(BPR >= Closest >> Random) holds at every k.

One scoring pass per model computes every k (the evaluator ranks once and
reads hits off the rank arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.metrics import KPIReport
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_chart, series_block

DEFAULT_KS = (1, 2, 5, 10, 15, 20, 25, 30, 40, 50)

MODELS = (
    ("Random Items", "random"),
    ("Closest Items", "closest"),
    ("BPR", "bpr"),
)


@dataclass(frozen=True)
class Fig3Result:
    """``series[model][k] -> KPIReport`` for each swept k."""

    ks: tuple[int, ...]
    series: dict[str, dict[int, KPIReport]]

    def metric_series(self, model: str, metric: str) -> list[float]:
        """One curve, e.g. ``metric_series("BPR", "urr")``."""
        return [getattr(self.series[model][k], metric) for k in self.ks]

    def render(self) -> str:
        lines = [f"Fig. 3: KPIs varying k over {list(self.ks)}"]
        for metric, label in (
            ("urr", "URR"), ("nrr", "NRR"),
            ("precision", "P"), ("recall", "R"),
        ):
            lines.append(f"[{label}]")
            for name, _ in MODELS:
                lines.append(
                    "  " + series_block(name, self.ks,
                                        self.metric_series(name, metric))
                )
        lines.append("")
        lines.append(self.chart("urr"))
        return "\n".join(lines)

    def chart(self, metric: str) -> str:
        """The Fig.-3 panel for one metric as an ASCII line chart."""
        return ascii_chart(
            self.ks,
            {name: self.metric_series(name, metric) for name, _ in MODELS},
            title=f"Fig. 3 — {metric.upper()} vs k",
        )


def run(
    context: ExperimentContext, ks: tuple[int, ...] = DEFAULT_KS
) -> Fig3Result:
    series: dict[str, dict[int, KPIReport]] = {}
    for name, key in MODELS:
        result = context.evaluation(key, ks=ks)
        series[name] = {k: result.report(k) for k in ks}
    return Fig3Result(ks=ks, series=series)

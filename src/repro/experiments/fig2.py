"""Fig. 2 — distribution of genres over readings in the merged dataset.

The paper finds Comics at ~44 % of readings, followed by Thriller (14 %)
and Fantasy (12 %), and notes that 99 % of users read two genres at least
ten times more than all others together.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table
from repro.pipeline import stats


@dataclass(frozen=True)
class Fig2Result:
    """Genre shares plus the two-genre dominance statistic."""

    shares: dict[str, float]
    dominance: float

    def sorted_shares(self) -> list[tuple[str, float]]:
        return sorted(self.shares.items(), key=lambda kv: (-kv[1], kv[0]))

    def render(self) -> str:
        rows = [
            [genre, share * 100.0] for genre, share in self.sorted_shares()
        ]
        header = (
            "Fig. 2: genre shares of readings (%)\n"
            f"users with two dominant genres (>=10x the rest): "
            f"{self.dominance * 100:.1f}%\n"
        )
        return header + ascii_table(["genre", "share %"], rows, precision=1)


def run(context: ExperimentContext) -> Fig2Result:
    merged = context.merged
    return Fig2Result(
        shares=stats.genre_reading_shares(merged),
        dominance=stats.two_genre_dominance_share(merged),
    )

"""Fig. 4 — NRR by the number of books in the user's training history.

Users are grouped into equal-population bins by training-history size; the
paper's findings: every model's NRR grows with history (test sets grow
too); the Closest Items model gains steeply and overtakes BPR in the
largest bin, while BPR is comparatively flat — a few readings already let
CF exploit the preferences of similar users.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.groups import GroupKPIs, equal_population_bins, HistoryBin
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_chart, series_block

MODELS = (
    ("Random Items", "random"),
    ("Closest Items", "closest"),
    ("BPR", "bpr"),
)

N_BINS = 4


@dataclass(frozen=True)
class Fig4Result:
    """Per-bin NRR series for the three plotted models."""

    k: int
    bins: tuple[HistoryBin, ...]
    groups: dict[str, GroupKPIs]

    def render(self) -> str:
        labels = [b.label for b in self.bins]
        lines = [
            f"Fig. 4: NRR by training-history size (k={self.k}), "
            f"bins: {labels} (n={[b.n_users for b in self.bins]})"
        ]
        for name, _ in MODELS:
            lines.append(
                "  " + series_block(name, labels, self.groups[name].nrr)
            )
        lines.append("")
        lines.append(
            ascii_chart(
                labels,
                {name: self.groups[name].nrr for name, _ in MODELS},
                title="Fig. 4 — NRR by training-history bin",
            )
        )
        return "\n".join(lines)


def run(context: ExperimentContext) -> Fig4Result:
    from repro.eval.groups import evaluate_by_history_size

    k = context.config.k
    reference = context.evaluation("bpr")
    bins = equal_population_bins(reference.per_user.train_sizes, N_BINS)
    groups = {
        name: evaluate_by_history_size(context.evaluation(key), k, bins=bins)
        for name, key in MODELS
    }
    return Fig4Result(k=k, bins=bins, groups=groups)

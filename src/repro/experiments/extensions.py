"""Experiments for the paper's declared future work.

The conclusion of the paper names two follow-ups this reproduction also
implements and evaluates:

- *beyond-accuracy* evaluation ("parameters and metrics for evaluating the
  diversity and serendipity of the recommendations") — the
  ``beyond_accuracy`` experiment scores every Table-1 system on intra-list
  diversity, novelty, serendipity, and catalogue coverage;
- *sequential recommendation* ("we could consider sequential recommendation
  systems algorithms") — the ``sequential`` experiment adds a first-order
  Markov-chain recommender and a hybrid sweep to the Table-1 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bpr import BPR
from repro.core.closest_items import ClosestItems
from repro.core.hybrid import HybridRecommender
from repro.core.sequential import SequentialMarkov
from repro.eval.beyond_accuracy import BeyondAccuracyReport, evaluate_beyond_accuracy
from repro.eval.evaluator import fit_and_evaluate
from repro.eval.metrics import KPIReport
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table


@dataclass(frozen=True)
class BeyondAccuracyResult:
    """Diversity/novelty/serendipity/coverage per system."""

    k: int
    rows: dict[str, BeyondAccuracyReport]
    accuracy: dict[str, KPIReport]

    def render(self) -> str:
        table_rows = []
        for name, report in self.rows.items():
            kpi = self.accuracy[name]
            table_rows.append(
                [name, kpi.urr, report.diversity, report.novelty,
                 report.serendipity, report.coverage]
            )
        header = (
            f"Beyond-accuracy metrics (k={self.k}) — the paper's "
            "future-work evaluation\n"
            "Div: intra-list diversity, Nov: novelty (bits), Ser: share of "
            "hits unlike the user's shelf, Cov: catalogue coverage\n"
        )
        return header + ascii_table(
            ["system", "URR", "Div", "Nov", "Ser", "Cov"], table_rows
        )


def run_beyond_accuracy(context: ExperimentContext) -> BeyondAccuracyResult:
    """Score the three personalised Table-1 systems beyond accuracy."""
    k = context.config.k
    # Content similarity defines "alike"; reuse the fitted CB model's matrix.
    closest = context.model("closest")
    similarity = closest.similarity
    rows: dict[str, BeyondAccuracyReport] = {}
    accuracy: dict[str, KPIReport] = {}
    for name, key in (
        ("Most Read Items", "most_read"),
        ("Closest Items", "closest"),
        ("BPR", "bpr"),
    ):
        model = context.model(key)
        rows[name] = evaluate_beyond_accuracy(
            model, context.split, similarity, k=k
        )
        accuracy[name] = context.evaluation(key).report(k)
    return BeyondAccuracyResult(k=k, rows=rows, accuracy=accuracy)


@dataclass(frozen=True)
class SequentialResult:
    """KPIs of the sequential extension next to the paper's systems."""

    k: int
    rows: dict[str, KPIReport]

    def render(self) -> str:
        table_rows = [
            [name, r.urr, r.nrr, r.precision, r.recall, round(r.first_rank)]
            for name, r in self.rows.items()
        ]
        header = (
            f"Sequential extension (k={self.k}) — the paper's future-work "
            "algorithm family\n"
        )
        return header + ascii_table(
            ["system", "URR", "NRR", "P", "R", "FR"], table_rows
        )


def run_sequential(context: ExperimentContext) -> SequentialResult:
    """Markov-chain recommender and its blend with BPR versus the paper's
    systems."""
    k = context.config.k
    rows: dict[str, KPIReport] = {
        "Closest Items": context.evaluation("closest").report(k),
        "BPR": context.evaluation("bpr").report(k),
    }
    sequential = SequentialMarkov()
    rows["Sequential Markov"] = fit_and_evaluate(
        sequential, context.split, context.merged, ks=(k,)
    ).report(k)
    blend = HybridRecommender(
        SequentialMarkov(), BPR(context.config.bpr), weight=0.35
    )
    rows["Sequential + BPR blend"] = fit_and_evaluate(
        blend, context.split, context.merged, ks=(k,)
    ).report(k)
    return SequentialResult(k=k, rows=rows)

"""Table 2 — training and recommendation wall-clock time.

The paper reports ~30 s of training for BPR on its dataset, no proper
training phase for Random/Closest, and ~0.04-0.05 s per recommendation
request for every model. We time fits via the context (which records them)
and per-request latency by issuing single-user recommendations, like the
deployed GUI would.

Nuance kept from the paper: Closest Items *does* build its similarity
matrix up front — the paper books that under "no proper training phase",
so we report it separately as preparation time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table

SYSTEMS = (
    ("Random Items", "random", False),
    ("Closest Items", "closest", False),
    ("BPR", "bpr", True),
)


@dataclass(frozen=True)
class Table2Result:
    """(training seconds | None, seconds per recommendation) per system."""

    rows: dict[str, tuple[float | None, float]]

    def render(self) -> str:
        table_rows = []
        for name, _, __ in SYSTEMS:
            train_s, rec_s = self.rows[name]
            table_rows.append(
                [
                    name,
                    "-" if train_s is None else f"{train_s:.2f}",
                    f"{rec_s:.4f}",
                ]
            )
        return (
            "Table 2: average time (s) for training and recommendation\n"
            + ascii_table(["system", "training (s)", "recommendation (s)"],
                          table_rows)
        )


def run(context: ExperimentContext) -> Table2Result:
    rows: dict[str, tuple[float | None, float]] = {}
    for name, key, has_training in SYSTEMS:
        result = context.evaluation(key, measure_latency=True)
        fit_seconds = context.fit_seconds(key) if has_training else None
        assert result.recommend_seconds_per_user is not None
        rows[name] = (fit_seconds, result.recommend_seconds_per_user)
    return Table2Result(rows=rows)

"""Shared state for experiment runs.

Generating the world, merging the sources, splitting, and fitting BPR are
the expensive steps; most experiments share them. An
:class:`ExperimentContext` performs each step once and caches the result,
so running the whole experiment suite costs one dataset build plus one fit
per distinct model configuration.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.base import Recommender
from repro.core.bpr import BPR
from repro.core.closest_items import ClosestItems
from repro.core.most_read import MostReadItems
from repro.core.random_items import RandomItems
from repro.datasets.merged import MergedDataset
from repro.datasets.synthetic import SyntheticSources, generate_sources
from repro.errors import ConfigurationError
from repro.eval.evaluator import EvaluationResult, evaluate_model
from repro.eval.split import DatasetSplit, split_readings
from repro.experiments.config import ExperimentConfig
from repro.pipeline.merge import MergeReport, build_merged_dataset


class ExperimentContext:
    """Lazily-built, cached dataset + split + fitted models."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._sources: SyntheticSources | None = None
        self._merged: MergedDataset | None = None
        self._merge_report: MergeReport | None = None
        self._split: DatasetSplit | None = None
        self._bct_only: tuple[MergedDataset, DatasetSplit] | None = None
        self._models: dict[str, tuple[Recommender, float]] = {}
        self._evaluations: dict[tuple, EvaluationResult] = {}

    # ------------------------------------------------------------------
    # dataset pipeline
    # ------------------------------------------------------------------

    @property
    def sources(self) -> SyntheticSources:
        if self._sources is None:
            self._sources = generate_sources(self.config.world)
        return self._sources

    def _ensure_merged(self) -> None:
        if self._merged is None:
            sources = self.sources
            self._merged, self._merge_report = build_merged_dataset(
                sources.bct, sources.anobii, self.config.merge,
                n_jobs=self.config.n_jobs,
            )

    @property
    def merged(self) -> MergedDataset:
        self._ensure_merged()
        assert self._merged is not None
        return self._merged

    @property
    def merge_report(self) -> MergeReport:
        self._ensure_merged()
        assert self._merge_report is not None
        return self._merge_report

    @property
    def split(self) -> DatasetSplit:
        if self._split is None:
            self._split = split_readings(self.merged)
        return self._split

    @property
    def bct_only(self) -> tuple[MergedDataset, DatasetSplit]:
        """The BPR (BCT only) workload: same catalogue, loans only."""
        if self._bct_only is None:
            dataset = self.merged.restrict_to_sources({"bct"})
            self._bct_only = (dataset, split_readings(dataset))
        return self._bct_only

    # ------------------------------------------------------------------
    # fitted models
    # ------------------------------------------------------------------

    def model(self, name: str) -> Recommender:
        """A fitted model by experiment name; see ``fit_seconds`` for cost.

        Known names: ``random``, ``most_read``, ``closest``, ``bpr``,
        ``bpr_bct_only``, and ``closest:<field,field,...>`` for metadata
        ablations.
        """
        fitted, _ = self._fit(name)
        return fitted

    def fit_seconds(self, name: str) -> float:
        """Wall-clock seconds the named model took to fit."""
        _, seconds = self._fit(name)
        return seconds

    def _fit(self, name: str) -> tuple[Recommender, float]:
        if name in self._models:
            return self._models[name]
        model = self._build(name)
        if name == "bpr_bct_only":
            dataset, split = self.bct_only
        else:
            dataset, split = self.merged, self.split
        started = time.perf_counter()
        model.fit(split.train, dataset)
        seconds = time.perf_counter() - started
        self._models[name] = (model, seconds)
        return self._models[name]

    def _build(self, name: str) -> Recommender:
        if name == "random":
            return RandomItems(seed=self.config.seed)
        if name == "most_read":
            return MostReadItems()
        if name == "closest":
            return ClosestItems(fields=self.config.closest_fields)
        if name.startswith("closest:"):
            fields = tuple(name.split(":", 1)[1].split(","))
            return ClosestItems(fields=fields)
        if name in ("bpr", "bpr_bct_only"):
            return BPR(replace(self.config.bpr, seed=self.config.seed))
        raise ConfigurationError(f"unknown experiment model {name!r}")

    # ------------------------------------------------------------------
    # cached evaluations
    # ------------------------------------------------------------------

    def evaluation(
        self,
        name: str,
        ks: tuple[int, ...] | None = None,
        measure_latency: bool = False,
    ) -> EvaluationResult:
        """Evaluate a model on the test holdout (cached per (name, ks))."""
        ks = ks or (self.config.k,)
        key = (name, ks, measure_latency)
        if key not in self._evaluations:
            model = self.model(name)
            split = self.bct_only[1] if name == "bpr_bct_only" else self.split
            self._evaluations[key] = evaluate_model(
                model, split, ks=ks, measure_latency=measure_latency
            )
        return self._evaluations[key]

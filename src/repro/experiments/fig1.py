"""Fig. 1 — CDFs of readings per user and per book in the merged dataset.

The paper reports readings per user reaching ~480 and readings per book
reaching ~6 000 (log-scaled x-axis). We reproduce both empirical CDFs and
summarise them at fixed quantiles so the shapes can be compared numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table
from repro.pipeline import stats

QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00)


@dataclass(frozen=True)
class Fig1Result:
    """Per-user and per-book reading-count distributions."""

    per_user: np.ndarray
    per_book: np.ndarray

    def quantile_rows(self) -> list[list[object]]:
        rows = []
        for q in QUANTILES:
            rows.append(
                [
                    f"p{int(q * 100)}",
                    float(np.quantile(self.per_user, q)),
                    float(np.quantile(self.per_book, q)),
                ]
            )
        return rows

    def cdf(self, which: str) -> tuple[np.ndarray, np.ndarray]:
        """The full ECDF series ("per_user" or "per_book") for plotting."""
        values = self.per_user if which == "per_user" else self.per_book
        return stats.ecdf(values)

    def render(self) -> str:
        header = (
            "Fig. 1: readings per user / per book (CDF quantiles)\n"
            f"users={len(self.per_user)} books={len(self.per_book)}\n"
        )
        return header + ascii_table(
            ["quantile", "readings/user", "readings/book"],
            self.quantile_rows(),
            precision=0,
        )


def run(context: ExperimentContext) -> Fig1Result:
    merged = context.merged
    return Fig1Result(
        per_user=stats.readings_per_user_counts(merged),
        per_book=stats.readings_per_book_counts(merged),
    )

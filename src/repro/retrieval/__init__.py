"""Serving-scale candidate retrieval: ANN index + sharded factor stores.

The paper's Reading&Machine back-end answers top-k requests with a full
user x item matmul — exact, but a wall at the ROADMAP's million-user
north star. This package provides the retrieval-then-rank split standard
in large-catalogue recommenders:

- :class:`~repro.retrieval.ivf.IVFIndex` — a numpy-only inverted-file
  index: seeded k-means centroids over item vectors (BPR item factors,
  embedder vectors, any ``(n_items, d)`` float matrix), probe the top-c
  cells for a query, exact re-rank of the pooled candidates. Probing
  every cell reproduces the exact scorer bit for bit (the *exact tier*),
  so approximation is opt-in per request, never silent.
- :class:`~repro.retrieval.shards.UserShardStore` — an mmap-backed,
  user-sharded factor store: user factor rows live in per-shard ``.npy``
  artefacts behind SHA-256 manifests and are loaded lazily, so serving
  memory is O(active shards) rather than O(users).

Both plug into :class:`~repro.app.service.RecommendationService`
(``retrieval="ivf"``, ``user_shards=...``); the speed/recall trade-off
is measured by ``python -m repro bench-serve`` and the contract each
tier honours is tabulated in ``docs/determinism.md``. See
``docs/serving.md`` for the end-to-end serving guide.
"""

from repro.retrieval.ivf import IVFIndex, recall_at_k
from repro.retrieval.shards import UserShardStore, write_user_shards

__all__ = [
    "IVFIndex",
    "UserShardStore",
    "recall_at_k",
    "write_user_shards",
]

"""An mmap-backed, user-sharded factor store for serving at scale.

A million-user factor matrix (``n_users x d`` float64) does not belong
resident in every serving process. This module shards the user-factor
rows into contiguous per-shard ``.npy`` artefacts — written atomically
behind a SHA-256 manifest, the PR-8 corpus machinery applied to model
state — and loads shards lazily as ``numpy`` memmaps: resident memory is
O(active shards), the OS page cache does the rest, and a cold shard
costs one ``np.load(..., mmap_mode="r")``, not a full-matrix read.

Row fidelity is exact: shards store the factor rows byte-for-byte, so a
gather through the store is bit-identical to fancy-indexing the
in-memory matrix (``tests/retrieval/test_shardstore.py`` pins this).
:class:`~repro.app.service.RecommendationService` uses the store for
primary scoring (``user_shards=...``) and coalesces same-shard batch
requests so each shard is touched once per batch; ``python -m repro
health <dir>`` verifies a store like any other manifested artefact.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, PersistenceError
from repro.resilience.artefacts import atomic_write, verify_manifest, write_manifest

#: Manifest ``kind`` tag for a user-shard store directory.
SHARD_KIND = "user-shards"

#: Store metadata file (row counts, shard plan, dtype).
META_NAME = "shards.json"

#: Default shard count for :func:`write_user_shards`.
DEFAULT_SHARDS = 8

#: Default shards kept resident by :class:`UserShardStore`.
DEFAULT_RESIDENT = 2


def shard_name(shard: int) -> str:
    """The on-disk file name of shard ``shard``."""
    return f"shard-{shard:04d}.npy"


def write_user_shards(
    root: "str | Path",
    user_factors: np.ndarray,
    n_shards: int = DEFAULT_SHARDS,
) -> Path:
    """Write ``user_factors`` as a manifested user-shard store.

    Rows are split into ``n_shards`` contiguous, near-equal shards
    (shard ``s`` holds rows ``[s * rows_per_shard, ...)``), each saved
    with :func:`~repro.resilience.artefacts.atomic_write` so a crash
    mid-write never leaves a half shard behind, and the whole directory
    is fingerprinted by one SHA-256 manifest.

    Returns the store root. Load it back with :class:`UserShardStore`.
    """
    factors = np.ascontiguousarray(np.asarray(user_factors))
    if factors.ndim != 2 or factors.shape[0] < 1:
        raise ConfigurationError(
            "user_factors must be a non-empty (n_users, d) matrix, got "
            f"shape {factors.shape}"
        )
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    n_users = factors.shape[0]
    n_shards = min(n_shards, n_users)
    rows_per_shard = -(-n_users // n_shards)
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    files: list[Path] = []
    for shard in range(n_shards):
        start = shard * rows_per_shard
        stop = min(n_users, start + rows_per_shard)
        path = root / shard_name(shard)
        with atomic_write(path, "wb") as handle:
            np.save(handle, factors[start:stop])
        files.append(path)
    meta = {
        "n_users": int(n_users),
        "n_factors": int(factors.shape[1]),
        "n_shards": int(n_shards),
        "rows_per_shard": int(rows_per_shard),
        "dtype": str(factors.dtype),
    }
    meta_path = root / META_NAME
    with atomic_write(meta_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    files.append(meta_path)
    write_manifest(root, files, kind=SHARD_KIND)
    return root


class UserShardStore:
    """Lazy, bounded-residency reader over a user-shard store directory.

    Shards are opened as read-only memmaps on first touch and kept in a
    small LRU (``max_resident``); touching a new shard past the bound
    evicts the least-recently-used one, so a long-lived service's
    factor memory stays O(``max_resident`` shards) no matter how many
    users exist. All methods are thread-safe (one store may back a
    concurrent service).

    Args:
        root: the store directory written by :func:`write_user_shards`.
        max_resident: shards kept mapped at once (>= 1).
        verify: check the directory manifest on open (corruption
            surfaces as :class:`~repro.errors.PersistenceError` here
            rather than as garbage factors mid-request).
    """

    def __init__(
        self,
        root: "str | Path",
        max_resident: int = DEFAULT_RESIDENT,
        verify: bool = True,
    ) -> None:
        if max_resident < 1:
            raise ConfigurationError(
                f"max_resident must be >= 1, got {max_resident}"
            )
        self.root = Path(root)
        if verify:
            verify_manifest(self.root, kind=SHARD_KIND)
        meta_path = self.root / META_NAME
        if not meta_path.exists():
            raise PersistenceError(f"{meta_path} is missing")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        self.n_users = int(meta["n_users"])
        self.n_factors = int(meta["n_factors"])
        self.n_shards = int(meta["n_shards"])
        self.rows_per_shard = int(meta["rows_per_shard"])
        self.dtype = np.dtype(meta["dtype"])
        self.max_resident = max_resident
        self.loads = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._resident: "OrderedDict[int, np.ndarray]" = OrderedDict()

    def shard_of(self, user_index: int) -> int:
        """Which shard holds ``user_index``'s factor row."""
        if not 0 <= user_index < self.n_users:
            raise ConfigurationError(
                f"user index {user_index} outside [0, {self.n_users})"
            )
        return user_index // self.rows_per_shard

    def shard_bounds(self, shard: int) -> tuple[int, int]:
        """The ``[start, stop)`` user-index range of ``shard``."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} outside [0, {self.n_shards})"
            )
        start = shard * self.rows_per_shard
        return start, min(self.n_users, start + self.rows_per_shard)

    def shard(self, shard: int) -> np.ndarray:
        """The memmapped factor block of ``shard`` (LRU-resident)."""
        start, _ = self.shard_bounds(shard)
        with self._lock:
            block = self._resident.get(shard)
            if block is not None:
                self._resident.move_to_end(shard)
                return block
            block = np.load(self.root / shard_name(shard), mmap_mode="r")
            self._resident[shard] = block
            self.loads += 1
            while len(self._resident) > self.max_resident:
                self._resident.popitem(last=False)
                self.evictions += 1
            return block

    def user_vector(self, user_index: int) -> np.ndarray:
        """One user's factor row (a copy, safe to hold across evictions)."""
        shard = self.shard_of(user_index)
        start, _ = self.shard_bounds(shard)
        return np.array(self.shard(shard)[user_index - start])

    def group_by_shard(
        self, user_indices: np.ndarray
    ) -> "dict[int, np.ndarray]":
        """Positions of ``user_indices`` grouped by owning shard.

        The coalescing primitive: ``{shard: positions}`` where
        ``positions`` index into ``user_indices`` in their original
        order, so a batch can score each shard's users in one gathered
        matmul while touching each shard exactly once.
        """
        user_indices = np.asarray(user_indices, dtype=np.int64)
        shards = user_indices // self.rows_per_shard
        return {
            int(shard): np.flatnonzero(shards == shard)
            for shard in np.unique(shards)
        }

    def gather(self, user_indices: np.ndarray) -> np.ndarray:
        """Factor rows for ``user_indices``, bit-equal to fancy indexing.

        Rows come back in request order; each owning shard is touched
        once. The result is a fresh in-memory array (the caller may
        matmul it long after the shards were evicted).
        """
        user_indices = np.asarray(user_indices, dtype=np.int64)
        out = np.empty((len(user_indices), self.n_factors), dtype=self.dtype)
        for shard, positions in self.group_by_shard(user_indices).items():
            start, _ = self.shard_bounds(shard)
            block = self.shard(shard)
            out[positions] = block[user_indices[positions] - start]
        return out

    @property
    def resident_shards(self) -> tuple[int, ...]:
        """The shard ids currently memmapped, oldest first."""
        with self._lock:
            return tuple(self._resident)

    def stats(self) -> dict:
        """Load/eviction/residency accounting for health reports."""
        with self._lock:
            return {
                "n_shards": self.n_shards,
                "resident": len(self._resident),
                "max_resident": self.max_resident,
                "loads": self.loads,
                "evictions": self.evictions,
            }

    def close(self) -> None:
        """Drop every resident memmap so the mappings can be reclaimed.

        The store stays usable afterwards — the next access simply
        reloads its shard — so ``close()`` is idempotent and safe to
        call from ``__exit__`` even while requests are in flight.
        """
        with self._lock:
            self._resident.clear()

    def __enter__(self) -> "UserShardStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""A numpy-only IVF (inverted-file) index for top-k candidate retrieval.

Million-item catalogues make the exact scorer's full ``(1, d) @ (d, n)``
matmul the serving bottleneck. The classic retrieval-then-rank answer is
an inverted file: partition the item vectors into cells with k-means,
and at query time score only the items of the ``probe_cells`` cells
whose centroids look best for the query — an exact re-rank over a small
candidate pool instead of the whole catalogue.

Design points, in the repo's tiered-kernel style (PR-1/PR-6):

- **Exact tier built in.** :meth:`IVFIndex.search` with
  ``probe_cells >= n_cells`` pools *every* cell; the pool is then the
  ascending item range, so the re-rank computes the very same
  ``query @ vectors.T`` row, masks the same positions, and cuts top-k
  with the same ``argpartition``/stable-sort kernel as the exact scorer
  — bit-identical output, enforced by
  ``tests/retrieval/test_ivf_properties.py``.
- **Deterministic build.** Centroids come from seeded k-means
  (:func:`repro.rng.derive_rng`, fixed iteration count, index-ordered
  tie-breaks, deterministic empty-cell re-seeding), so the same
  ``(vectors, n_cells, seed)`` always builds the same index.
- **Monotone recall.** Candidate pools grow as supersets in
  ``probe_cells`` (and in ``min_candidates``), so recall@k is monotone
  non-decreasing in the probe width — the knob trades latency for
  recall and nothing else.

The index is agnostic to what the vectors are: BPR item factors,
hashed-TF-IDF embedder vectors, any ``(n_items, d)`` float matrix whose
relevance is a dot product. ``docs/serving.md`` explains how to choose
``probe_cells``; ``python -m repro bench-serve`` measures the
recall-vs-latency frontier and writes ``BENCH_serve.json``.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import EXCLUDED_SCORE, _top_k
from repro.errors import ConfigurationError
from repro.rng import derive_rng

#: Lloyd iterations run by :meth:`IVFIndex.build` (fixed, so the build
#: cost and the result are independent of convergence accidents).
DEFAULT_KMEANS_ITERS = 10

#: Items scored per assignment block during the build (bounds the
#: ``(block, n_cells)`` distance matrix, so building over a million-item
#: catalogue never materialises an n x c float64 monster).
_ASSIGN_BLOCK = 8192


def default_n_cells(n_items: int) -> int:
    """The auto cell count: ``ceil(sqrt(n_items))``, clamped to the catalogue.

    The square-root rule balances the two per-query costs — ranking
    ``n_cells`` centroids and re-ranking ``n_items / n_cells`` items per
    probed cell — which is the standard IVF sizing heuristic.
    """
    if n_items < 1:
        raise ConfigurationError(f"n_items must be >= 1, got {n_items}")
    return int(min(n_items, max(1, np.ceil(np.sqrt(n_items)))))


def default_probe_cells(n_cells: int) -> int:
    """The default probe width: half the cells, at least one.

    A deliberately conservative default — on the bench corpus it lands
    recall@10 well above 0.95 (asserted by the ``bench-serve`` CI smoke
    job) while halving the scored candidates; ``docs/serving.md`` shows
    how to pick a leaner point on the recall-vs-latency frontier from
    ``BENCH_serve.json``.
    """
    if n_cells < 1:
        raise ConfigurationError(f"n_cells must be >= 1, got {n_cells}")
    return max(1, int(np.ceil(n_cells / 2)))


class IVFIndex:
    """Seeded k-means inverted file over a matrix of item vectors.

    Build with :meth:`build`; query with :meth:`search` (approximate,
    ``probe_cells`` cells) or :meth:`exact_top_k` (the full-pool exact
    tier). Every item belongs to exactly one cell and cell membership
    arrays are ascending, so the probe-everything pool *is* the item
    index range — the property the exact-tier bit-identity rests on.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        centroids: np.ndarray,
        assignments: np.ndarray,
        seed: int | None,
    ) -> None:
        self._vectors = vectors
        self.centroids = centroids
        self.assignments = assignments
        self.seed = seed
        order = np.argsort(assignments, kind="stable")
        sizes = np.bincount(assignments, minlength=len(centroids))
        starts = np.concatenate(([0], np.cumsum(sizes)))
        self._cell_items = order.astype(np.int64)
        self._cell_sizes = sizes.astype(np.int64)
        self._cell_starts = starts.astype(np.int64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        n_cells: int | None = None,
        n_iters: int = DEFAULT_KMEANS_ITERS,
        seed: int | None = None,
    ) -> "IVFIndex":
        """Cluster ``vectors`` into an IVF index (pure function of inputs).

        Args:
            vectors: ``(n_items, d)`` float matrix; copied to float64 so
                re-rank arithmetic matches the exact scorer's dtype.
            n_cells: number of k-means cells (default:
                :func:`default_n_cells`); clamped to ``n_items``.
            n_iters: Lloyd iterations (fixed count — no data-dependent
                stopping, so the build is deterministic).
            seed: ``repro.rng`` seed for the centroid initialisation.
        """
        vectors = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
        if vectors.ndim != 2 or vectors.shape[0] < 1:
            raise ConfigurationError(
                "vectors must be a non-empty (n_items, d) matrix, got "
                f"shape {vectors.shape}"
            )
        if not np.isfinite(vectors).all():
            raise ConfigurationError("vectors must be finite")
        n_items = vectors.shape[0]
        if n_cells is None:
            n_cells = default_n_cells(n_items)
        if n_cells < 1:
            raise ConfigurationError(f"n_cells must be >= 1, got {n_cells}")
        n_cells = min(n_cells, n_items)
        if n_iters < 1:
            raise ConfigurationError(f"n_iters must be >= 1, got {n_iters}")
        rng = derive_rng(seed, "retrieval", "ivf", "init")
        initial = rng.choice(n_items, size=n_cells, replace=False)
        centroids = vectors[np.sort(initial)].copy()
        assignments = _assign_cells(vectors, centroids)
        for _ in range(n_iters):
            centroids = _update_centroids(vectors, assignments, centroids)
            assignments = _assign_cells(vectors, centroids)
        return cls(vectors, centroids, assignments, seed)

    @property
    def n_items(self) -> int:
        """How many item vectors the index covers."""
        return int(self._vectors.shape[0])

    @property
    def n_cells(self) -> int:
        """How many k-means cells partition the items."""
        return int(self.centroids.shape[0])

    @property
    def vectors(self) -> np.ndarray:
        """The indexed ``(n_items, d)`` float64 item-vector matrix."""
        return self._vectors

    def cell_items(self, cell: int) -> np.ndarray:
        """The ascending item indices assigned to ``cell``."""
        start = self._cell_starts[cell]
        stop = self._cell_starts[cell + 1]
        return self._cell_items[start:stop]

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------

    def rank_cells(self, query: np.ndarray) -> np.ndarray:
        """Cells ordered most-promising first for a dot-product query.

        Relevance here is the model's own score (``query . item``), so
        cells are ranked by ``centroid . query`` — the centroid stands in
        for its members. Stable sort: centroid-score ties break toward
        the lower cell index, keeping probes deterministic.
        """
        scores = self.centroids @ np.asarray(query, dtype=np.float64)
        return np.argsort(-scores, kind="stable")

    def candidates(
        self,
        query: np.ndarray,
        probe_cells: int,
        min_candidates: int = 0,
    ) -> np.ndarray:
        """The ascending candidate pool for ``query``.

        Takes the top ``probe_cells`` cells of :meth:`rank_cells`, then
        keeps widening cell by cell until the pool holds at least
        ``min_candidates`` items (or every cell is taken) — so a caller
        asking for k survivors after masking always gets a full list
        when the catalogue allows one. Pools are supersets as either
        knob grows, which is what makes recall@k monotone.
        """
        if probe_cells < 1:
            raise ConfigurationError(
                f"probe_cells must be >= 1, got {probe_cells}"
            )
        order = self.rank_cells(query)
        take = min(probe_cells, self.n_cells)
        if min_candidates > 0 and take < self.n_cells:
            pooled = np.cumsum(self._cell_sizes[order])
            needed = int(np.searchsorted(pooled, min_candidates)) + 1
            take = min(self.n_cells, max(take, needed))
        if take >= self.n_cells:
            return np.arange(self.n_items, dtype=np.int64)
        chosen = order[:take]
        pool = np.concatenate([self.cell_items(int(cell)) for cell in chosen])
        return np.sort(pool)

    # ------------------------------------------------------------------
    # search: probe + exact re-rank
    # ------------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int,
        probe_cells: int,
        exclude: np.ndarray | None = None,
        min_candidates: int | None = None,
    ) -> np.ndarray:
        """Top-``k`` item indices for ``query`` from the probed pool.

        ``exclude`` masks item indices (already-read books) exactly the
        way the exact scorer does — their scores become
        :data:`~repro.core.base.EXCLUDED_SCORE` before the cut, so they
        can never be returned. ``min_candidates`` defaults to
        ``k + len(exclude)``: enough survivors for a full list.

        With ``probe_cells >= n_cells`` the pool is the whole ascending
        item range and this method is bit-identical to
        :meth:`exact_top_k` (and to the exact scorer it mirrors).
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        excluded = 0 if exclude is None else len(exclude)
        if min_candidates is None:
            min_candidates = k + excluded
        pool = self.candidates(query, probe_cells, min_candidates)
        return self.rerank(pool, query, k, exclude)

    def exact_top_k(
        self, query: np.ndarray, k: int, exclude: np.ndarray | None = None
    ) -> np.ndarray:
        """The exact tier: re-rank the entire catalogue (no probing).

        The reference answer for recall measurements, and the target the
        probe-everything :meth:`search` must match bit for bit.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        pool = np.arange(self.n_items, dtype=np.int64)
        return self.rerank(pool, query, k, exclude)

    def rerank(
        self,
        pool: np.ndarray,
        query: np.ndarray,
        k: int,
        exclude: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact top-k over ``pool``, sharing the exact scorer's kernels.

        The score row is the same ``(1, d) @ (d, m)`` GEMM the exact
        scorer runs (for the full pool, on the very same operand
        values), the mask is the same ``EXCLUDED_SCORE`` scatter, and
        the cut is :func:`repro.core.base._top_k` itself — so the exact
        tier cannot drift from the scorer it claims to match.
        """
        query = np.asarray(query, dtype=np.float64)
        scores = (query[np.newaxis, :] @ self._vectors[pool].T)[0]
        if exclude is not None and len(exclude):
            scores[np.isin(pool, exclude)] = EXCLUDED_SCORE
        top = _top_k(scores, k)
        return pool[top]


def recall_at_k(
    index: IVFIndex,
    queries: np.ndarray,
    k: int,
    probe_cells: int,
    exclude: "list[np.ndarray] | None" = None,
) -> float:
    """Mean recall@k of probed search against the exact tier.

    For each query the approximate top-k is compared with
    :meth:`IVFIndex.exact_top_k`; recall is the overlap fraction,
    averaged over queries. ``exclude`` optionally gives one masked item
    array per query (the serving case: already-read books).
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[0] < 1:
        raise ConfigurationError(
            f"queries must be a non-empty (m, d) matrix, got {queries.shape}"
        )
    total = 0.0
    for row, query in enumerate(queries):
        mask = exclude[row] if exclude is not None else None
        exact = index.exact_top_k(query, k, exclude=mask)
        if len(exact) == 0:
            total += 1.0
            continue
        approx = index.search(query, k, probe_cells, exclude=mask)
        overlap = np.intersect1d(exact, approx, assume_unique=True)
        total += len(overlap) / len(exact)
    return total / queries.shape[0]


# ----------------------------------------------------------------------
# seeded k-means internals
# ----------------------------------------------------------------------


def _assign_cells(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (squared Euclidean), blockwise.

    ``np.argmin`` breaks distance ties toward the lower cell index, so
    the assignment is a pure function of the operands.
    """
    centroid_sq = np.einsum("ij,ij->i", centroids, centroids)
    assignments = np.empty(vectors.shape[0], dtype=np.int64)
    for start in range(0, vectors.shape[0], _ASSIGN_BLOCK):
        block = vectors[start:start + _ASSIGN_BLOCK]
        distances = centroid_sq[np.newaxis, :] - 2.0 * (block @ centroids.T)
        assignments[start:start + _ASSIGN_BLOCK] = np.argmin(distances, axis=1)
    return assignments


def _update_centroids(
    vectors: np.ndarray, assignments: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """One Lloyd update: per-cell means, empty cells re-seeded.

    Sums run as one ``bincount`` per dimension (d is small). An empty
    cell steals the point currently farthest from its own centroid —
    farthest first, index-ordered on ties — so no cell ever stays
    empty and the fix is deterministic.
    """
    n_cells, d = centroids.shape
    counts = np.bincount(assignments, minlength=n_cells).astype(np.float64)
    sums = np.empty_like(centroids)
    for dim in range(d):
        sums[:, dim] = np.bincount(
            assignments, weights=vectors[:, dim], minlength=n_cells
        )
    updated = centroids.copy()
    filled = counts > 0
    updated[filled] = sums[filled] / counts[filled, np.newaxis]
    empty = np.flatnonzero(~filled)
    if len(empty):
        residuals = np.einsum(
            "ij,ij->i", vectors - updated[assignments],
            vectors - updated[assignments],
        )
        # Farthest points first; argsort's stability makes ties break
        # toward the lower item index.
        donors = np.argsort(-residuals, kind="stable")[: len(empty)]
        updated[empty] = vectors[donors]
    return updated

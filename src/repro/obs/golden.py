"""Normalisation and comparison helpers for golden traces/snapshots.

A fixed-seed deterministic demo run (see :mod:`repro.obs.demo`) is
bit-reproducible in everything except *real* wall-clock measurements
that leak in from un-injectable clocks (BPR's per-epoch ``seconds``,
per-batch training timings). The goldens therefore compare a
*normalised* view:

- histogram series whose name ends in ``_seconds`` keep their
  observation ``count`` (deterministic) but zero their ``sum`` and
  per-bucket ``counts`` (timing-dependent);
- gauge values for names ending in ``_seconds`` or ``_per_second``
  (throughputs divide a deterministic count by a measured duration, so
  they are exactly as timing-dependent as the duration) are zeroed;
- everything else — counters, KPI gauges, span ids, span timing fields
  driven by :class:`~repro.obs.trace.TickingClock` — is compared exactly
  (floats to a relative tolerance, guarding against harmless
  last-bit BLAS drift).
"""

from __future__ import annotations

import math

#: Series with these name suffixes carry real wall-clock measurements
#: (durations, or rates derived from durations) and are zeroed by the
#: normalisers.
_TIMING_SUFFIXES = ("_seconds", "_per_second")


def _is_timing_name(name: str) -> bool:
    return name.endswith(_TIMING_SUFFIXES)


def normalize_snapshot(snapshot: dict) -> dict:
    """A copy of a registry snapshot with timing-valued fields zeroed."""
    out = {
        "counters": {
            name: dict(entry)
            for name, entry in snapshot.get("counters", {}).items()
        },
        "gauges": {},
        "histograms": {},
    }
    for name, entry in snapshot.get("gauges", {}).items():
        entry = dict(entry)
        if _is_timing_name(name):
            entry["value"] = 0.0
            if "labels" in entry:
                entry["labels"] = {key: 0.0 for key in entry["labels"]}
        out["gauges"][name] = entry
    for name, entry in snapshot.get("histograms", {}).items():
        out["histograms"][name] = _normalize_histogram(name, entry)
    return out


def _normalize_histogram(name: str, entry: dict) -> dict:
    entry = dict(entry)
    if _is_timing_name(name):
        entry["sum"] = 0.0
        entry["counts"] = [0] * len(entry.get("counts", []))
        if "labels" in entry:
            entry["labels"] = {
                key: _normalize_histogram(name, child)
                for key, child in entry["labels"].items()
            }
    return entry


def normalize_trace(spans: list[dict]) -> list[dict]:
    """Span dicts with any ``*_seconds``/``*_per_second`` attributes zeroed.

    Span ``start``/``end``/``cpu_seconds`` come from the injected
    deterministic clocks and are kept exactly; only attributes that carry
    real measured durations are scrubbed.
    """
    normalized = []
    for span in spans:
        span = dict(span)
        attrs = dict(span.get("attrs", {}))
        for key in attrs:
            if _is_timing_name(key):
                attrs[key] = 0.0
        span["attrs"] = attrs
        normalized.append(span)
    return normalized


def assert_golden_equal(actual, expected, path: str = "$", rel: float = 1e-9):
    """Recursive equality with relative float tolerance; raises
    :class:`AssertionError` naming the first diverging path."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: {type(actual).__name__} != dict"
        assert set(actual) == set(expected), (
            f"{path}: keys {sorted(set(actual) ^ set(expected))} differ"
        )
        for key in expected:
            assert_golden_equal(actual[key], expected[key], f"{path}.{key}", rel)
        return
    if isinstance(expected, (list, tuple)):
        assert isinstance(actual, (list, tuple)), (
            f"{path}: {type(actual).__name__} != list"
        )
        assert len(actual) == len(expected), (
            f"{path}: length {len(actual)} != {len(expected)}"
        )
        for index, (a, e) in enumerate(zip(actual, expected)):
            assert_golden_equal(a, e, f"{path}[{index}]", rel)
        return
    if isinstance(expected, float) and isinstance(actual, (int, float)):
        assert math.isclose(float(actual), expected, rel_tol=rel, abs_tol=rel), (
            f"{path}: {actual!r} != {expected!r}"
        )
        return
    assert actual == expected, f"{path}: {actual!r} != {expected!r}"

"""Observability: metrics registry, structured tracing, JSON logging.

The subsystem is dependency-free and fully deterministic under a fixed
seed: span/trace ids come from :func:`repro.rng.derive_rng`, clocks are
injectable (:class:`~repro.obs.trace.TickingClock`), and JSONL trace
export rides the crash-safe :func:`repro.resilience.artefacts.atomic_write`.

Entry points:

- :class:`MetricsRegistry` — counters/gauges/histograms with labelled
  children and an immutable :meth:`~MetricsRegistry.snapshot`;
- :class:`Tracer` / :func:`start_span` — nested spans (wall + CPU time,
  exception status); ``start_span(None, ...)`` is an allocation-free
  no-op so hot paths stay cold when untraced;
- :func:`configure_logging` — JSON log records carrying the active
  span's trace/span ids;
- :func:`run_instrumented_demo` — the instrumented synthetic
  pipeline → fit → evaluate → serve run behind ``python -m repro metrics``
  and the golden trace tests.
"""

from repro.obs.logging import JsonFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    StageProfile,
    load_trace_jsonl,
    render_stage_table,
    stage_profiles,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TickingClock,
    Tracer,
    active_ids,
    start_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "StageProfile",
    "TickingClock",
    "Tracer",
    "active_ids",
    "configure_logging",
    "get_logger",
    "load_trace_jsonl",
    "render_stage_table",
    "run_instrumented_demo",
    "stage_profiles",
    "start_span",
]


def run_instrumented_demo(*args, **kwargs):
    """Lazy proxy for :func:`repro.obs.demo.run_instrumented_demo`.

    Deferred because the demo pulls in the model/service stack, which
    (through :mod:`repro.app.service`) imports this package.
    """
    # repro: allow[layering] — lazy re-export of the top-of-stack demo
    from repro.obs.demo import run_instrumented_demo as _run

    return _run(*args, **kwargs)

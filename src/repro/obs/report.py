"""Rendering traces into per-stage timing tables.

Consumes either live :class:`~repro.obs.trace.Span` objects or the plain
dicts read back from a JSONL trace file, groups them by span name, and
renders the per-stage profile (calls, wall time, CPU time, share of the
total) that ``scripts/trace_report.py`` and ``python -m repro metrics``
print.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StageProfile:
    """Aggregate timings of every span sharing one name."""

    name: str
    calls: int
    wall_seconds: float
    cpu_seconds: float
    errors: int

    @property
    def mean_seconds(self) -> float:
        """Average wall seconds per call (0.0 when never called)."""
        return self.wall_seconds / self.calls if self.calls else 0.0


def load_trace_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL trace back into span dicts (skipping blank lines)."""
    path = Path(path)
    spans = []
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{line_number} is not valid JSON: {exc}"
            ) from exc
    return spans


def _as_dict(span) -> dict:
    return span if isinstance(span, dict) else span.as_dict()


def stage_profiles(spans) -> list[StageProfile]:
    """Group spans by name, ordered by decreasing total wall time."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        record = _as_dict(span)
        start = record.get("start") or 0.0
        end = record.get("end") or start
        entry = totals.setdefault(record["name"], [0, 0.0, 0.0, 0])
        entry[0] += 1
        entry[1] += max(end - start, 0.0)
        entry[2] += record.get("cpu_seconds") or 0.0
        entry[3] += 1 if record.get("status") == "error" else 0
    profiles = [
        StageProfile(
            name=name, calls=int(calls), wall_seconds=wall,
            cpu_seconds=cpu, errors=int(errors),
        )
        for name, (calls, wall, cpu, errors) in totals.items()
    ]
    profiles.sort(key=lambda p: (-p.wall_seconds, p.name))
    return profiles


def render_stage_table(spans) -> str:
    """The per-stage timing table for a trace (human-readable)."""
    profiles = stage_profiles(spans)
    if not profiles:
        return "trace is empty (no spans)"
    # Only top-level wall time is a meaningful denominator, but a flat
    # share-of-sum is still the standard quick read for nested traces.
    total_wall = sum(p.wall_seconds for p in profiles) or 1.0
    width = max(len(p.name) for p in profiles)
    width = max(width, len("stage"))
    lines = [
        f"{'stage':<{width}}  {'calls':>6}  {'wall s':>10}  "
        f"{'mean ms':>9}  {'cpu s':>9}  {'share':>6}  {'errors':>6}"
    ]
    for p in profiles:
        lines.append(
            f"{p.name:<{width}}  {p.calls:>6}  {p.wall_seconds:>10.4f}  "
            f"{p.mean_seconds * 1e3:>9.3f}  {p.cpu_seconds:>9.4f}  "
            f"{p.wall_seconds / total_wall:>6.1%}  {p.errors:>6}"
        )
    return "\n".join(lines)

"""An instrumented end-to-end run over the synthetic world.

This is the observability layer's reference workload: generate the
synthetic sources, run the merge pipeline, fit BPR, evaluate it, and
serve a handful of requests (cache hits, a cold-start user, a batch) —
all through one :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry`.

``python -m repro metrics`` runs it to produce a metrics snapshot and an
optional JSONL trace; ``tests/obs/test_golden.py`` runs it with
``deterministic=True`` (seeded ids + :class:`~repro.obs.trace.TickingClock`)
and pins the outputs against committed goldens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.bpr import BPR, BPRConfig
from repro.core.most_read import MostReadItems
from repro.datasets.synthetic import generate_sources
from repro.datasets.world import WorldConfig
from repro.eval.evaluator import EvaluationResult, fit_and_evaluate
from repro.eval.split import split_readings
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TickingClock, Tracer
from repro.pipeline.merge import MergeConfig, MergeReport, build_merged_dataset
from repro.rng import DEFAULT_SEED

#: The demo's fixed world (mirrors the test suite's tiny world: fast to
#: generate, survives the activity floors below).
DEMO_WORLD = WorldConfig(
    n_books=220, n_authors=90, n_bct_users=90, n_anobii_users=380,
)

DEMO_MERGE = MergeConfig(min_user_readings=10, min_book_readings=5)

DEMO_EPOCHS = 4
DEMO_KS = (5, 20)
DEMO_SERVE_K = 5


@dataclass
class DemoRun:
    """Everything the instrumented demo produced."""

    tracer: Tracer
    metrics: MetricsRegistry
    merge_report: MergeReport
    evaluation: EvaluationResult
    health: dict
    served_by: dict = field(default_factory=dict)
    """``served_by`` tag -> count over the demo's requests."""


def run_instrumented_demo(
    seed: int = DEFAULT_SEED,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    deterministic: bool = False,
) -> DemoRun:
    """Run pipeline → fit → evaluate → serve under full instrumentation.

    Args:
        seed: world/model/tracer seed — the whole run is a function of it.
        tracer: tracer to record into (one is built when omitted).
        metrics: registry to record into (one is built when omitted).
        deterministic: replace the tracer's and the service's clocks with
            :class:`TickingClock`, making every timing field (and thus
            the exported trace and latency-histogram placements) a pure
            function of call order — the golden-test mode.
    """
    # Service-level imports are deferred so ``repro.obs`` never imports
    # ``repro.app`` at module load (the service itself imports obs).
    from repro.app.service import (
        RecommendationRequest,
        RecommendationService,
    )

    if tracer is None:
        if deterministic:
            tracer = Tracer(
                seed=seed,
                clock=TickingClock(start=1_000.0, step=0.001),
                cpu_clock=TickingClock(start=0.0, step=0.0005),
            )
        else:
            tracer = Tracer(seed=seed)
    metrics = metrics if metrics is not None else MetricsRegistry()

    with tracer.span("demo.run", seed=seed):
        world = WorldConfig(
            n_books=DEMO_WORLD.n_books,
            n_authors=DEMO_WORLD.n_authors,
            n_bct_users=DEMO_WORLD.n_bct_users,
            n_anobii_users=DEMO_WORLD.n_anobii_users,
            seed=seed,
        )
        with tracer.span("demo.generate"):
            sources = generate_sources(world)
        merged, merge_report = build_merged_dataset(
            sources.bct, sources.anobii, DEMO_MERGE,
            tracer=tracer, metrics=metrics,
        )
        with tracer.span("demo.split"):
            split = split_readings(merged)

        model = BPR(
            BPRConfig(epochs=DEMO_EPOCHS, seed=seed),
            tracer=tracer, metrics=metrics,
        )
        evaluation = fit_and_evaluate(
            model, split, merged, ks=DEMO_KS,
            tracer=tracer, metrics=metrics,
        )

        most_read = MostReadItems().fit(split.train, merged)
        service = RecommendationService(
            model,
            split.train,
            merged,
            cold_start_fallback=most_read,
            degrade_unknown_users=True,
            metrics=metrics,
            tracer=tracer,
            clock=(
                TickingClock(start=0.0, step=0.0005)
                if deterministic
                else time.monotonic
            ),
        )
        served_by: dict[str, int] = {}
        with tracer.span("demo.serve"):
            users = [str(u) for u in merged.bct_user_ids[:3]]
            requests = [
                RecommendationRequest(user_id=user, k=DEMO_SERVE_K)
                for user in users
            ]
            # Twice each: the second pass answers from the LRU cache.
            for _ in range(2):
                for request in requests:
                    response = service.recommend_response(request)
                    served_by[response.served_by] = (
                        served_by.get(response.served_by, 0) + 1
                    )
            # A cold-start user degrades to the static popularity list.
            response = service.recommend_response(
                RecommendationRequest(user_id="cold-start-user", k=DEMO_SERVE_K)
            )
            served_by[response.served_by] = (
                served_by.get(response.served_by, 0) + 1
            )
            # One batched pass through recommend_many (all cache hits).
            for response in service.recommend_many_responses(requests):
                served_by[response.served_by] = (
                    served_by.get(response.served_by, 0) + 1
                )
        health = service.health()
    return DemoRun(
        tracer=tracer,
        metrics=metrics,
        merge_report=merge_report,
        evaluation=evaluation,
        health=health,
        served_by=served_by,
    )

"""Structured tracing: nested spans with deterministic ids.

A :class:`Tracer` produces a tree of :class:`Span` records per traced
operation — name, attributes, wall and CPU time, and exception status.
Span and trace ids are drawn from a :func:`repro.rng.derive_rng` stream,
so a fixed seed replays the exact same id sequence; combined with an
injectable clock (see :class:`TickingClock`) a whole trace becomes
bit-reproducible, which is what lets ``tests/obs`` pin golden JSONL
traces for the synthetic end-to-end run.

Spans nest through an internal stack: a span opened while another is
active becomes its child (``parent_id``), and the well-nestedness
invariants — every child's interval lies inside its parent's, timestamps
are monotone under a monotone clock — are property-tested.

Exporters:

- **in-memory** — finished spans accumulate on :attr:`Tracer.spans`
  (root-last, i.e. completion order);
- **JSONL** — :meth:`Tracer.export_jsonl` writes one span per line via
  the crash-safe :func:`repro.resilience.artefacts.atomic_write`.

The hot paths accept ``tracer=None`` and call :func:`start_span`, which
returns a shared no-op span without allocating — the overhead guard in
``tests/obs/test_overhead.py`` asserts zero allocations per no-op span.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.resilience.artefacts import atomic_write
from repro.rng import derive_rng

STATUS_OK = "ok"
STATUS_ERROR = "error"

#: (trace_id, span_id) of the innermost active span of the most recently
#: entered tracer, for log correlation; ``(None, None)`` outside any span.
_active_ids: tuple[str | None, str | None] = (None, None)


def active_ids() -> tuple[str | None, str | None]:
    """The (trace_id, span_id) pair of the currently active span."""
    return _active_ids


class Span:
    """One traced operation; used as a context manager.

    Timing fields are filled by the owning tracer's clocks:
    ``start``/``end`` from the wall clock and ``cpu_seconds`` from the CPU
    clock. ``status`` is ``"ok"`` unless the body raised, in which case
    ``error`` carries ``ExceptionType: message`` and the exception
    propagates.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "start", "end", "cpu_seconds", "status", "error", "_tracer",
        "_cpu_start", "_previous_ids",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start: float | None = None
        self.end: float | None = None
        self.cpu_seconds: float | None = None
        self.status = STATUS_OK
        self.error: str | None = None
        self._tracer = tracer
        self._cpu_start: float | None = None
        self._previous_ids: tuple[str | None, str | None] = (None, None)

    @property
    def seconds(self) -> float:
        """Wall seconds between enter and exit (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set_attr(self, key: str, value) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def set_attrs(self, **attrs) -> None:
        """Attach several attributes to the span at once."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        global _active_ids
        self._previous_ids = _active_ids
        _active_ids = (self.trace_id, self.span_id)
        self._tracer._stack.append(self)
        self._cpu_start = self._tracer._cpu_clock()
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        global _active_ids
        self.end = self._tracer._clock()
        cpu_start = self._cpu_start if self._cpu_start is not None else 0.0
        self.cpu_seconds = self._tracer._cpu_clock() - cpu_start
        if exc is not None:
            self.status = STATUS_ERROR
            self.error = f"{type(exc).__name__}: {exc}"
        _active_ids = self._previous_ids
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finished.append(self)
        self._tracer._trim()

    def as_dict(self) -> dict:
        """A JSON-serialisable record of this span (one JSONL line)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """A reusable no-op span: every operation does nothing.

    A single module-level instance (:data:`NULL_SPAN`) is handed out by
    :func:`start_span` when no tracer is configured, so the instrumented
    fast paths pay no allocation for being traceable.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        return None

    def set_attrs(self, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


def start_span(tracer: "Tracer | None", name: str, **attrs):
    """``tracer.span(name, **attrs)``, or the shared no-op span.

    The single ``if`` is the whole cost of instrumentation when tracing is
    off; hot paths use this instead of conditional blocks.
    """
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


class Tracer:
    """Produces nested spans with deterministic ids.

    Args:
        seed: seed for the id stream (``repro.rng`` semantics) — two
            tracers with the same seed emit identical id sequences.
        clock: wall clock for span start/end (``time.perf_counter``
            default; inject :class:`TickingClock` for reproducible
            timestamps).
        cpu_clock: CPU clock (``time.process_time`` default).
        max_spans: retained finished spans (oldest dropped beyond this),
            bounding a long-lived service's memory.
    """

    def __init__(
        self,
        seed: int | None = None,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ConfigurationError(
                f"max_spans must be >= 1, got {max_spans}"
            )
        self.seed = seed
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._ids = derive_rng(seed, "obs", "trace-ids")
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._max_spans = max_spans

    def _next_id(self, width: int = 16) -> str:
        return f"{int(self._ids.integers(0, 2**63)):0{width}x}"

    def span(self, name: str, **attrs) -> Span:
        """Open a span (use as ``with tracer.span("stage") as span:``).

        The first span opened while no other is active starts a new trace;
        nested spans inherit the trace id and point at their parent.
        """
        if not name:
            raise ConfigurationError("span name must be non-empty")
        if self._stack:
            parent = self._stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._next_id(32)
            parent_id = None
        return Span(self, name, trace_id, self._next_id(), parent_id, attrs)

    @property
    def active_span(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @property
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, in completion order (children before parents)."""
        return tuple(self._finished)

    def clear(self) -> None:
        """Drop every finished span (open spans are unaffected)."""
        self._finished.clear()

    def adopt(self, records: "Iterable[dict]") -> None:
        """Append finished spans recorded by another tracer.

        This is how traces cross a process boundary: a worker records
        into its own seeded tracer, ships ``[span.as_dict() for span in
        tracer.spans]`` back with its result, and the parent adopts
        them. Adopted spans keep their original ids, timings, and
        parent links (they form separate traces from the parent's), and
        participate in :meth:`export_jsonl` like locally finished spans.

        Args:
            records: :meth:`Span.as_dict` dictionaries, in the order
                they should appear in the finished-span list.
        """
        for record in records:
            span = Span(
                self,
                record["name"],
                record["trace_id"],
                record["span_id"],
                record.get("parent_id"),
                dict(record.get("attrs", {})),
            )
            span.start = record.get("start")
            span.end = record.get("end")
            span.cpu_seconds = record.get("cpu_seconds")
            span.status = record.get("status", STATUS_OK)
            span.error = record.get("error")
            self._finished.append(span)
        self._trim()

    def export_jsonl(self, path: str | Path) -> Path:
        """Write finished spans as JSON Lines, crash-safely.

        One :meth:`Span.as_dict` object per line, completion order — a
        well-nested file therefore lists every span after all of its
        children, which ``scripts/trace_report.py`` relies on not at all
        (it re-groups by name).
        """
        path = Path(path)
        with atomic_write(path, "w", encoding="utf-8") as handle:
            for span in self._finished:
                handle.write(json.dumps(span.as_dict(), sort_keys=True))
                handle.write("\n")
        return path

    def _trim(self) -> None:
        overflow = len(self._finished) - self._max_spans
        if overflow > 0:
            del self._finished[:overflow]


class TickingClock:
    """A deterministic clock: each call returns ``start + calls * step``.

    Injected into :class:`Tracer` (and the service) for golden traces —
    all timing fields become functions of call order alone.
    """

    def __init__(self, start: float = 0.0, step: float = 0.001) -> None:
        if step <= 0:
            raise ConfigurationError(f"step must be positive, got {step}")
        self._now = start
        self._step = step

    def __call__(self) -> float:
        now = self._now
        self._now += self._step
        return now

"""Structured JSON logging with trace correlation.

:func:`configure_logging` installs a single stream handler on the
``repro`` logger hierarchy whose formatter emits one JSON object per
record: timestamp, level, logger name, message, any ``extra`` fields, and
— when a :class:`~repro.obs.trace.Tracer` span is active — the
``trace_id``/``span_id`` of that span, so log lines and trace spans can
be joined offline.

The setup is idempotent (re-configuring replaces the previous obs
handler instead of stacking a second one) and scoped: only the ``repro``
logger is touched, never the root logger, so embedding applications keep
their own logging configuration.
"""

from __future__ import annotations

import io
import json
import logging

from repro.obs.trace import active_ids

#: Logger namespace this module configures.
ROOT_LOGGER_NAME = "repro"

#: ``logging.LogRecord`` attributes that are not user-supplied extras.
_RESERVED = frozenset(
    logging.LogRecord(
        "", 0, "", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Format each record as one JSON object (sorted keys, one line)."""

    def format(self, record: logging.LogRecord) -> str:
        """Render ``record`` (plus span ids and extras) as one JSON line."""
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id, span_id = active_ids()
        if trace_id is not None:
            payload["trace_id"] = trace_id
            payload["span_id"] = span_id
        if record.exc_info and record.exc_info[0] is not None:
            payload["error"] = (
                f"{record.exc_info[0].__name__}: {record.exc_info[1]}"
            )
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = _jsonable(value)
        return json.dumps(payload, sort_keys=True, default=str)


def _jsonable(value):
    """Pass JSON-native values through; stringify everything else."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class _ObsHandler(logging.StreamHandler):
    """Marker subclass so reconfiguration can find and replace itself."""


def configure_logging(
    level: int = logging.INFO,
    stream: io.TextIOBase | None = None,
) -> logging.Logger:
    """Install JSON logging on the ``repro`` logger and return it.

    Args:
        level: threshold for the ``repro`` hierarchy.
        stream: destination (default ``sys.stderr``); tests pass a
            ``StringIO`` and parse the lines back with ``json.loads``.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if isinstance(handler, _ObsHandler):
            logger.removeHandler(handler)
            handler.close()
    handler = _ObsHandler(stream)
    handler.setFormatter(JsonFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")

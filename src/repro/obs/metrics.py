"""A dependency-free metrics registry: counters, gauges, histograms.

The registry is the service-side complement of the resilience layer added
in PR 2: every degradation, cache outcome, breaker transition, pipeline
quarantine, and latency observation lands in one process-wide-shareable
:class:`MetricsRegistry` whose :meth:`~MetricsRegistry.snapshot` is a
plain, deep-copied ``dict`` (JSON-serialisable, immutable with respect to
later instrument updates).

Three instrument kinds, Prometheus-style but in-process only:

- :class:`Counter` — monotonically non-decreasing floats;
- :class:`Gauge` — floats that move both ways;
- :class:`Histogram` — fixed upper-bound buckets plus an optional bounded
  *window* of raw observations for exact percentile reporting.

Every instrument supports labelled children via :meth:`~Counter.labels`
(``registry.counter("service.degraded").labels(source="static")``);
children share the parent's name and appear in the snapshot under a
canonical ``key=value`` label string.

Invariants the property suite pins down (``tests/obs/test_metrics.py``):

- a histogram's per-bucket counts always sum to its observation count;
- snapshots are immutable copies — mutating one never changes the
  registry, and two consecutive snapshots of an idle registry are equal;
- counters reject negative increments.

Concurrency: every instrument mutation (``inc``/``set``/``observe``,
labelled-child creation, registry create-or-get) takes a per-object
lock, so one registry can be shared by the concurrent serving path
(:class:`~repro.app.service.RecommendationService` under a thread pool)
without lost updates — the audit lives in
``tests/app/test_service_concurrency.py``. Worker processes cannot share
a registry at all; they snapshot their private registry and the parent
folds it in with :meth:`MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError

#: Default histogram buckets for request/stage latencies, in seconds.
#: Geometric from 100 µs to ~10 s; observations above the last bound land
#: in the implicit +inf overflow bucket.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default raw-observation window retained for exact percentiles.
DEFAULT_WINDOW = 10_000


def _label_key(labels: Mapping[str, str]) -> str:
    """Canonical, order-independent string form of a label set."""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def _parse_label_key(key: str) -> dict[str, str]:
    """Invert :func:`_label_key` (labels must not contain ``,`` or ``=``)."""
    labels: dict[str, str] = {}
    for part in key.split(","):
        name, _, value = part.partition("=")
        labels[name] = value
    return labels


class _Instrument:
    """Shared labelled-children machinery."""

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise ConfigurationError("instrument name must be non-empty")
        self.name = name
        self.help = help
        self._children: dict[str, "_Instrument"] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child instrument for one label combination (created lazily)."""
        if not labels:
            raise ConfigurationError(
                f"labels() on {self.name!r} needs at least one label"
            )
        key = _label_key({k: str(v) for k, v in labels.items()})
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def _reset(self) -> None:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically non-decreasing count."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the count by ``amount`` (thread-safe, must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def _reset(self) -> None:
        # Under the instrument lock: a reset racing a concurrent inc()
        # must not resurrect a half-applied increment.
        with self._lock:
            self._value = 0.0
        for child in self._children.values():
            child._reset()

    def _snapshot(self) -> dict:
        out: dict = {"value": self._value}
        if self._children:
            out["labels"] = {
                key: child._value  # type: ignore[attr-defined]
                for key, child in sorted(self._children.items())
            }
        return out


class Gauge(_Instrument):
    """A value that can move in both directions."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value (thread-safe)."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount`` (thread-safe)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount`` (thread-safe)."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """The current gauge value."""
        return self._value

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0
        for child in self._children.values():
            child._reset()

    def _snapshot(self) -> dict:
        out: dict = {"value": self._value}
        if self._children:
            out["labels"] = {
                key: child._value  # type: ignore[attr-defined]
                for key, child in sorted(self._children.items())
            }
        return out


class Histogram(_Instrument):
    """Fixed-bucket histogram with an exact-percentile window.

    ``buckets`` are strictly increasing finite upper bounds; an implicit
    +inf overflow bucket catches everything above the last bound, so the
    per-bucket counts always sum to the observation count.

    ``window`` bounds a deque of the most recent raw observations used by
    :meth:`percentile`; it is the single source of truth for latency
    percentiles (``ServiceStats.percentile`` and ``health()`` both read
    it, so the two can never disagree). ``window=0`` disables the raw
    window and :meth:`percentile` falls back to a bucket-upper-bound
    estimate.
    """

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        window: int = DEFAULT_WINDOW,
        help: str = "",
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bucket bounds must strictly increase"
            )
        if not all(np.isfinite(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} bucket bounds must be finite "
                "(the +inf overflow bucket is implicit)"
            )
        if window < 0:
            raise ConfigurationError(
                f"histogram {name!r} window must be >= 0, got {window}"
            )
        self.buckets = bounds
        self.window_size = window
        self._bounds = np.asarray(bounds, dtype=np.float64)
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        """Record one observation into the buckets and the raw window.

        Thread-safe: bucket counts, the running sum/count, and the
        window move together under the instrument lock, so concurrent
        observers cannot break the counts-sum-to-count invariant.
        """
        value = float(value)
        index = int(np.searchsorted(self._bounds, value, side="left"))
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self.window_size:
                self._window.append(value)

    @property
    def count(self) -> int:
        """Total observations recorded (window and overflow included)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        return self._sum

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; last entry is the overflow."""
        return tuple(self._counts)

    @property
    def window(self) -> tuple[float, ...]:
        """The retained raw observations, oldest first."""
        return tuple(self._window)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) over the raw window.

        Matches ``numpy.quantile``'s linear interpolation exactly. With
        the window disabled (or empty), falls back to the smallest bucket
        upper bound whose cumulative count covers ``q`` (the classic
        Prometheus-style estimate), or 0.0 with no observations at all.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q}")
        if self._window:
            return float(np.quantile(np.asarray(self._window), q))
        if not self._count:
            return 0.0
        target = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self._bounds):
                    return float(self._bounds[index])
                return float(self._bounds[-1])
        return float(self._bounds[-1])

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before any observation)."""
        return self._sum / self._count if self._count else 0.0

    def _merge_entry(self, entry: dict) -> None:
        """Fold a foreign snapshot entry's buckets/sum/count into this one.

        Raises:
            ConfigurationError: when the foreign bucket bounds disagree
                with this histogram's.
        """
        if tuple(entry["buckets"]) != self.buckets:
            raise ConfigurationError(
                f"histogram {self.name!r} bucket bounds differ from the "
                "snapshot being merged"
            )
        with self._lock:
            for index, count in enumerate(entry["counts"]):
                self._counts[index] += int(count)
            self._sum += float(entry["sum"])
            self._count += int(entry["count"])
        for key, child_entry in entry.get("labels", {}).items():
            child = self.labels(**_parse_label_key(key))
            child._merge_entry(child_entry)

    def _make_child(self) -> "Histogram":
        return Histogram(
            self.name, self.buckets, window=self.window_size, help=self.help
        )

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            self._window.clear()
        for child in self._children.values():
            child._reset()

    def _snapshot(self) -> dict:
        out: dict = {
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
        }
        if self._children:
            out["labels"] = {
                key: child._snapshot()  # type: ignore[attr-defined]
                for key, child in sorted(self._children.items())
            }
        return out


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    Asking twice for the same name returns the same instrument; asking for
    an existing name with a different kind raises
    :class:`~repro.errors.ConfigurationError` (a counter cannot silently
    become a gauge).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        """Create-or-get the :class:`Counter` called ``name``."""
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Create-or-get the :class:`Gauge` called ``name``."""
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        window: int = DEFAULT_WINDOW,
        help: str = "",
    ) -> Histogram:
        """Create-or-get the :class:`Histogram` called ``name``.

        ``buckets``/``window`` only apply on first creation; a later
        request with a different kind raises
        :class:`~repro.errors.ConfigurationError`.
        """
        return self._get_or_create(
            Histogram, name, buckets=buckets, window=window, help=help
        )

    def _get_or_create(self, kind: type, name: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not kind:
                    raise ConfigurationError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"requested as {kind.__name__}"
                    )
                return existing
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def __contains__(self, name: str) -> bool:
        """Whether an instrument called ``name`` exists."""
        return name in self._instruments

    @property
    def names(self) -> tuple[str, ...]:
        """Every registered instrument name, sorted."""
        return tuple(sorted(self._instruments))

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a foreign :meth:`snapshot` into this registry.

        This is how metrics cross a process boundary: a worker records
        into its own private registry, ships ``registry.snapshot()``
        back with its result, and the parent merges every worker
        snapshot — in task-submission order, so gauge values land
        exactly as the serial path would have left them.

        Merge semantics per instrument kind (labelled children
        included, matched by their canonical label string):

        - **counters** add the foreign value;
        - **gauges** take the foreign value (last merge wins);
        - **histograms** add bucket counts, sum, and count. Raw
          percentile windows do not travel through snapshots, so
          percentiles over merged-only data fall back to the bucket
          upper-bound estimate.

        Args:
            snapshot: a dict produced by :meth:`snapshot` (possibly in
                another process).

        Raises:
            ConfigurationError: when a name collides with an existing
                instrument of a different kind, or histogram bucket
                bounds disagree.
        """
        for name, entry in snapshot.get("counters", {}).items():
            counter = self.counter(name)
            counter.inc(entry["value"])
            for key, value in entry.get("labels", {}).items():
                counter.labels(**_parse_label_key(key)).inc(value)
        for name, entry in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(entry["value"])
            for key, value in entry.get("labels", {}).items():
                gauge.labels(**_parse_label_key(key)).set(value)
        for name, entry in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, buckets=tuple(entry["buckets"]))
            histogram._merge_entry(entry)

    def reset(self) -> None:
        """Zero every instrument (labelled children included) in place."""
        for instrument in self._instruments.values():
            instrument._reset()

    def snapshot(self) -> dict:
        """A deep, JSON-serialisable copy of every instrument's state."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument._snapshot()
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument._snapshot()
            else:
                histograms[name] = instrument._snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render(self) -> str:
        """A human-readable dump of the registry (one line per series)."""
        snap = self.snapshot()
        lines: list[str] = []
        for name, entry in snap["counters"].items():
            lines.append(f"counter    {name:<36} {entry['value']:g}")
            for key, value in entry.get("labels", {}).items():
                lines.append(f"counter    {name}{{{key}}} {value:g}")
        for name, entry in snap["gauges"].items():
            lines.append(f"gauge      {name:<36} {entry['value']:g}")
            for key, value in entry.get("labels", {}).items():
                lines.append(f"gauge      {name}{{{key}}} {value:g}")
        for name, entry in snap["histograms"].items():
            lines.append(
                f"histogram  {name:<36} count={entry['count']} "
                f"sum={entry['sum']:.6g}"
            )
        return "\n".join(lines)

"""Typed exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the recommendation service can catch a single base
class at their boundary while tests can assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is invalid or a row does not match its schema."""


class ColumnNotFoundError(SchemaError):
    """A referenced column does not exist in the table."""

    def __init__(self, column: str, available: tuple[str, ...]) -> None:
        self.column = column
        self.available = available
        super().__init__(
            f"column {column!r} not found; available columns: {', '.join(available)}"
        )


class TableIOError(ReproError):
    """Reading or writing a table from/to disk failed."""


class DatasetError(ReproError):
    """A dataset is malformed or inconsistent (e.g. dangling foreign keys)."""


class PipelineError(ReproError):
    """A preprocessing step received data it cannot process."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before ``fit``."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        super().__init__(
            f"{model_name} is not fitted yet; call fit() before requesting "
            "recommendations"
        )


class ConfigurationError(ReproError):
    """A model or experiment was configured with invalid parameters."""


class EvaluationError(ReproError):
    """An evaluation request is inconsistent with the available data."""


class UnknownUserError(EvaluationError):
    """A recommendation was requested for a user outside the training set."""

    def __init__(self, user_id: object) -> None:
        self.user_id = user_id
        super().__init__(f"unknown user: {user_id!r}")


class UnknownModelError(ConfigurationError):
    """A model name was not found in the registry."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        self.name = name
        self.available = available
        super().__init__(
            f"unknown model {name!r}; registered models: {', '.join(available)}"
        )


class PersistenceError(ReproError):
    """Saving or loading a model/dataset artefact failed."""


class ManifestMissingError(PersistenceError):
    """An artefact has no checksum manifest beside it."""


class TruncatedArtefactError(PersistenceError):
    """An artefact on disk is shorter than its manifest says it should be."""


class ChecksumMismatchError(PersistenceError):
    """An artefact's bytes do not hash to the checksum in its manifest."""


class ArtefactVersionError(PersistenceError):
    """An artefact was written by an incompatible format version."""


class ResilienceError(ReproError):
    """Base class for the resilience layer's failures."""


class DeadlineExceededError(ResilienceError):
    """A per-request deadline budget ran out before the work completed."""


class RetryExhaustedError(ResilienceError):
    """Every retry attempt failed; carries the last underlying error."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"all {attempts} attempts failed; last error: "
            f"{type(last_error).__name__}: {last_error}"
        )


class CircuitOpenError(ResilienceError):
    """A call was rejected because the guarding circuit breaker is open."""


class InjectedFaultError(ResilienceError):
    """A failure deliberately raised by the :class:`FaultInjector` harness."""

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected fault at {site!r}")

"""Seeded random-number helpers.

All stochastic components of the library (synthetic data generation, the
Random Items baseline, BPR negative sampling, train/test splitting) draw
their randomness through this module so that a single integer seed makes an
entire experiment reproducible.

The helpers wrap :class:`numpy.random.Generator`; child streams are derived
with :func:`numpy.random.SeedSequence.spawn` semantics via
:func:`derive_rng`, so two components seeded from the same parent never share
a stream.
"""

from __future__ import annotations

import zlib

import numpy as np

DEFAULT_SEED = 20230101
"""Default seed used across the library (an arbitrary fixed constant)."""


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an integer seed, an existing generator (returned unchanged, which
    lets callers thread one stream through a pipeline), or ``None`` for the
    library default seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(seed: int | None, *scope: str) -> np.random.Generator:
    """Derive an independent generator for a named component.

    ``scope`` strings (for example ``("bpr", "negatives")``) are hashed into
    the seed material, so distinct components obtain independent streams from
    the same experiment seed while remaining fully deterministic.
    """
    if seed is None:
        seed = DEFAULT_SEED
    material = [seed]
    for name in scope:
        material.append(zlib.crc32(name.encode("utf-8")))
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_seeds(seed: int | None, count: int) -> list[int]:
    """Return ``count`` independent integer seeds derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = make_rng(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]

"""The Section-3 preprocessing pipeline.

Order of operations, as in the paper:

1. :mod:`repro.pipeline.cleaning` — source-level filters: Italian
   monographs/manuscripts for BCT, Italian book items for Anobii, and the
   positive-feedback filter (rating >= 3).
2. :mod:`repro.pipeline.genres` — clean the crowd-voted genres (drop
   ubiquitous and rare labels, entropy-guided aggregation, top-4 with
   vote-proportional probabilities).
3. :mod:`repro.pipeline.merge` — align the catalogues on a normalised
   (title, author) key, build the unified Readings table, apply the
   activity filters (users >= 10 readings, books above the popularity
   floor), and emit a validated :class:`repro.datasets.MergedDataset`.
4. :mod:`repro.pipeline.stats` — dataset characterisation used by Figs 1-2.

:mod:`repro.pipeline.streaming` runs the same merge out-of-core over a
sharded corpus (:func:`~repro.pipeline.streaming.merge_sharded_corpus`),
producing a bit-identical dataset and report without ever materialising
the full event stream.
"""

from repro.pipeline.cleaning import (
    QuarantinedRow,
    QuarantineReport,
    clean_anobii,
    clean_bct,
    quarantine_anobii,
    quarantine_bct,
)
from repro.pipeline.genres import GenreModel, build_genre_model
from repro.pipeline.merge import MergeConfig, MergeReport, build_merged_dataset
from repro.pipeline.streaming import (
    StreamingMergeResult,
    load_merged_corpus,
    merge_sharded_corpus,
)
from repro.pipeline import stats

__all__ = [
    "QuarantinedRow",
    "QuarantineReport",
    "clean_anobii",
    "clean_bct",
    "quarantine_anobii",
    "quarantine_bct",
    "GenreModel",
    "build_genre_model",
    "MergeConfig",
    "MergeReport",
    "build_merged_dataset",
    "StreamingMergeResult",
    "load_merged_corpus",
    "merge_sharded_corpus",
    "stats",
]

"""Dataset characterisation (paper Section 3, Figs 1-2).

Functions here compute the published descriptive statistics of the merged
dataset: the CDFs of readings per user and per book (Fig. 1), the share of
readings per genre (Fig. 2), and the "99 % of users read two genres at
least ten times more than all the other genres together" observation.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.merged import MergedDataset


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities).

    ``probabilities[i]`` is P(X <= values[i]); the last entry is 1.0.
    """
    values = np.sort(np.asarray(values))
    if len(values) == 0:
        return values, np.asarray([])
    probabilities = np.arange(1, len(values) + 1) / len(values)
    return values, probabilities


def readings_per_user_counts(merged: MergedDataset) -> np.ndarray:
    """Number of readings of each user (unsorted)."""
    table = merged.readings_per_user()
    return table["n_readings"].astype(np.int64)


def readings_per_book_counts(merged: MergedDataset) -> np.ndarray:
    """Number of readings of each book (unsorted)."""
    table = merged.readings_per_book()
    return table["n_readings"].astype(np.int64)


def readings_cdfs(
    merged: MergedDataset,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Both Fig. 1 series: ``{"per_user": ecdf, "per_book": ecdf}``."""
    return {
        "per_user": ecdf(readings_per_user_counts(merged)),
        "per_book": ecdf(readings_per_book_counts(merged)),
    }


def genre_reading_shares(merged: MergedDataset) -> dict[str, float]:
    """Share of readings per genre (Fig. 2).

    Every reading contributes its book's genre probabilities, so a book that
    is 70 % Comics / 30 % Fantasy splits each of its readings accordingly.
    Books without a genre model contribute to an ``(unlabelled)`` bucket.
    """
    genre_probs = merged.genre_probabilities
    shares: dict[str, float] = {}
    total = 0.0
    for book_id in merged.readings["book_id"]:
        probs = genre_probs.get(int(book_id))
        if not probs:
            shares["(unlabelled)"] = shares.get("(unlabelled)", 0.0) + 1.0
            total += 1.0
            continue
        for genre, probability in probs.items():
            shares[genre] = shares.get(genre, 0.0) + probability
            total += probability
    if total == 0:
        return {}
    return {genre: value / total for genre, value in shares.items()}


def two_genre_dominance_share(
    merged: MergedDataset, factor: float = 10.0
) -> float:
    """Fraction of users whose two top genres dominate the rest.

    The paper observes that 99 % of users read two genres at least ten times
    more than all other genres together; this reproduces that check. Each
    reading counts towards its book's single most probable genre (books tie
    to their dominant label, as when reading Fig. 2's bars); users whose
    non-dominant mass is zero count as dominated.
    """
    genre_probs = merged.genre_probabilities
    top_genre = {
        book: max(probs.items(), key=lambda kv: (kv[1], kv[0]))[0]
        for book, probs in genre_probs.items()
        if probs
    }
    per_user: dict[str, dict[str, float]] = {}
    for user_id, book_id in zip(
        merged.readings["user_id"], merged.readings["book_id"]
    ):
        genre = top_genre.get(int(book_id))
        if genre is None:
            continue
        bucket = per_user.setdefault(str(user_id), {})
        bucket[genre] = bucket.get(genre, 0.0) + 1.0
    if not per_user:
        return 0.0
    dominated = 0
    for weights in per_user.values():
        ordered = sorted(weights.values(), reverse=True)
        top_two = sum(ordered[:2])
        rest = sum(ordered[2:])
        if rest == 0 or top_two >= factor * rest:
            dominated += 1
    return dominated / len(per_user)


def summary(merged: MergedDataset) -> dict[str, float]:
    """Headline statistics mirroring the paper's Section-3 narrative."""
    per_user = readings_per_user_counts(merged)
    per_book = readings_per_book_counts(merged)
    return {
        "n_books": float(merged.n_books),
        "n_users": float(merged.n_users),
        "n_bct_users": float(len(merged.bct_user_ids)),
        "n_readings": float(merged.n_readings),
        "median_readings_per_user": float(np.median(per_user)) if len(per_user) else 0.0,
        "max_readings_per_user": float(per_user.max()) if len(per_user) else 0.0,
        "median_readings_per_book": float(np.median(per_book)) if len(per_book) else 0.0,
        "max_readings_per_book": float(per_book.max()) if len(per_book) else 0.0,
    }

"""Source-level cleaning steps (paper Section 3).

Each function returns both the cleaned dataset and a :class:`CleaningReport`
with before/after row counts, so pipelines can log exactly what each filter
removed — the paper reports these reductions (e.g. 290 125 -> 228 059 BCT
books) and the reports make our equivalents auditable.

Real library dumps also contain *malformed* rows — dangling foreign keys,
loans returned before they were borrowed, blank user ids, duplicate
catalogue entries. :func:`quarantine_bct` and :func:`quarantine_anobii`
pull those rows into a :class:`QuarantineReport` (with full row context,
annotated per source table) instead of aborting on the first bad row; the
``strict=True`` escape hatch restores fail-fast behaviour for pipelines
that would rather stop than drop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.anobii import POSITIVE_RATING_THRESHOLD, AnobiiDataset
from repro.datasets.bct import BCTDataset
from repro.errors import PipelineError


@dataclass(frozen=True)
class CleaningReport:
    """Row counts removed by a cleaning step."""

    step: str
    catalogue_before: int
    catalogue_after: int
    events_before: int
    events_after: int

    @property
    def catalogue_removed(self) -> int:
        return self.catalogue_before - self.catalogue_after

    @property
    def events_removed(self) -> int:
        return self.events_before - self.events_after

    def __str__(self) -> str:
        return (
            f"{self.step}: catalogue {self.catalogue_before} -> "
            f"{self.catalogue_after}, events {self.events_before} -> "
            f"{self.events_after}"
        )


@dataclass(frozen=True)
class QuarantinedRow:
    """One malformed source row, with enough context to audit it."""

    table: str
    """Source-annotated table name (``"bct.loans"``, ``"anobii.ratings"``...)."""
    row: int
    """0-based row index in the source table."""
    reason: str
    context: dict
    """The offending row's values, stringified."""

    def __str__(self) -> str:
        return f"{self.table}[{self.row}]: {self.reason} ({self.context})"


@dataclass
class QuarantineReport:
    """Malformed rows collected (not dropped silently) during cleaning."""

    rows: list[QuarantinedRow] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    def add(self, table: str, row: int, reason: str, context: dict) -> None:
        self.rows.append(
            QuarantinedRow(
                table=table,
                row=row,
                reason=reason,
                context={key: str(value) for key, value in context.items()},
            )
        )

    def counts(self) -> dict[tuple[str, str], int]:
        """``{(table, reason): count}`` for report rendering."""
        return dict(Counter((r.table, r.reason) for r in self.rows))

    def extend(self, other: "QuarantineReport") -> "QuarantineReport":
        self.rows.extend(other.rows)
        return self

    def raise_if(self, strict: bool) -> None:
        """With ``strict`` and any quarantined row, fail the pipeline."""
        if strict and self.rows:
            sample = "; ".join(str(row) for row in self.rows[:3])
            raise PipelineError(
                f"{len(self.rows)} malformed source rows (strict mode): {sample}"
            )

    def __str__(self) -> str:
        if not self.rows:
            return "quarantine: no malformed rows"
        parts = [
            f"{table}: {count} x {reason}"
            for (table, reason), count in sorted(self.counts().items())
        ]
        return f"quarantine: {len(self.rows)} rows ({', '.join(parts)})"


def _keep_first_by_key(values) -> np.ndarray:
    """Mask keeping the first occurrence of each value."""
    seen: set = set()
    mask = np.empty(len(values), dtype=bool)
    for i, value in enumerate(values):
        mask[i] = value not in seen
        seen.add(value)
    return mask


def quarantine_bct(
    bct: BCTDataset, strict: bool = False
) -> tuple[BCTDataset, QuarantineReport]:
    """Split malformed BCT rows out of the dump before cleaning.

    Quarantines duplicate catalogue entries, loans referencing unknown
    books (dangling foreign keys), loans returned before they were
    borrowed, and loans with a blank user id. ``strict=True`` raises
    :class:`PipelineError` instead of quarantining.
    """
    report = QuarantineReport()
    books = bct.books
    keep_books = _keep_first_by_key(books["book_id"].tolist())
    for i in np.flatnonzero(~keep_books):
        report.add("bct.books", int(i), "duplicate book_id", books.row(int(i)))
    if not keep_books.all():
        books = books.filter(keep_books)

    known_books = set(books["book_id"].tolist())
    loans = bct.loans
    keep_loans = np.ones(loans.num_rows, dtype=bool)
    book_ids = loans["book_id"]
    user_ids = loans["user_id"]
    loan_dates = loans["loan_date"]
    return_dates = loans["return_date"]
    for i in range(loans.num_rows):
        reason = None
        if int(book_ids[i]) not in known_books:
            reason = "dangling book_id"
        elif not str(user_ids[i]).strip():
            reason = "blank user_id"
        elif return_dates[i] < loan_dates[i]:
            reason = "returned before borrowed"
        if reason is not None:
            keep_loans[i] = False
            report.add("bct.loans", i, reason, loans.row(i))
    report.raise_if(strict)
    if keep_loans.all() and keep_books.all():
        return bct, report
    return BCTDataset(books=books, loans=loans.filter(keep_loans)), report


def quarantine_anobii(
    anobii: AnobiiDataset, strict: bool = False
) -> tuple[AnobiiDataset, QuarantineReport]:
    """Split malformed Anobii rows out of the dump before cleaning.

    Quarantines duplicate catalogue items, ratings referencing unknown
    items, ratings outside the 1-5 star scale, and ratings with a blank
    user id. ``strict=True`` raises :class:`PipelineError` instead.
    """
    report = QuarantineReport()
    items = anobii.items
    keep_items = _keep_first_by_key(items["item_id"].tolist())
    for i in np.flatnonzero(~keep_items):
        report.add("anobii.items", int(i), "duplicate item_id", items.row(int(i)))
    if not keep_items.all():
        items = items.filter(keep_items)

    known_items = set(items["item_id"].tolist())
    ratings = anobii.ratings
    keep_ratings = np.ones(ratings.num_rows, dtype=bool)
    item_ids = ratings["item_id"]
    user_ids = ratings["user_id"]
    stars = ratings["rating"]
    for i in range(ratings.num_rows):
        reason = None
        if int(item_ids[i]) not in known_items:
            reason = "dangling item_id"
        elif not str(user_ids[i]).strip():
            reason = "blank user_id"
        elif not 1 <= int(stars[i]) <= 5:
            reason = "rating outside [1, 5]"
        if reason is not None:
            keep_ratings[i] = False
            report.add("anobii.ratings", i, reason, ratings.row(i))
    report.raise_if(strict)
    if keep_ratings.all() and keep_items.all():
        return anobii, report
    return (
        AnobiiDataset(items=items, ratings=ratings.filter(keep_ratings)),
        report,
    )


def clean_bct(bct: BCTDataset) -> tuple[BCTDataset, CleaningReport]:
    """Keep Italian monographs and manuscripts, per the paper."""
    cleaned = bct.filter_italian_monographs()
    report = CleaningReport(
        step="bct italian monographs",
        catalogue_before=bct.n_books,
        catalogue_after=cleaned.n_books,
        events_before=bct.n_loans,
        events_after=cleaned.n_loans,
    )
    return cleaned, report


def clean_anobii(
    anobii: AnobiiDataset, min_rating: int = POSITIVE_RATING_THRESHOLD
) -> tuple[AnobiiDataset, CleaningReport]:
    """Keep Italian books and positive feedback (rating >= ``min_rating``)."""
    cleaned = anobii.filter_italian_books().positive_feedback(min_rating)
    report = CleaningReport(
        step=f"anobii italian books, rating >= {min_rating}",
        catalogue_before=anobii.n_items,
        catalogue_after=cleaned.n_items,
        events_before=anobii.n_ratings,
        events_after=cleaned.n_ratings,
    )
    return cleaned, report

"""Source-level cleaning steps (paper Section 3).

Each function returns both the cleaned dataset and a :class:`CleaningReport`
with before/after row counts, so pipelines can log exactly what each filter
removed — the paper reports these reductions (e.g. 290 125 -> 228 059 BCT
books) and the reports make our equivalents auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.anobii import POSITIVE_RATING_THRESHOLD, AnobiiDataset
from repro.datasets.bct import BCTDataset


@dataclass(frozen=True)
class CleaningReport:
    """Row counts removed by a cleaning step."""

    step: str
    catalogue_before: int
    catalogue_after: int
    events_before: int
    events_after: int

    @property
    def catalogue_removed(self) -> int:
        return self.catalogue_before - self.catalogue_after

    @property
    def events_removed(self) -> int:
        return self.events_before - self.events_after

    def __str__(self) -> str:
        return (
            f"{self.step}: catalogue {self.catalogue_before} -> "
            f"{self.catalogue_after}, events {self.events_before} -> "
            f"{self.events_after}"
        )


def clean_bct(bct: BCTDataset) -> tuple[BCTDataset, CleaningReport]:
    """Keep Italian monographs and manuscripts, per the paper."""
    cleaned = bct.filter_italian_monographs()
    report = CleaningReport(
        step="bct italian monographs",
        catalogue_before=bct.n_books,
        catalogue_after=cleaned.n_books,
        events_before=bct.n_loans,
        events_after=cleaned.n_loans,
    )
    return cleaned, report


def clean_anobii(
    anobii: AnobiiDataset, min_rating: int = POSITIVE_RATING_THRESHOLD
) -> tuple[AnobiiDataset, CleaningReport]:
    """Keep Italian books and positive feedback (rating >= ``min_rating``)."""
    cleaned = anobii.filter_italian_books().positive_feedback(min_rating)
    report = CleaningReport(
        step=f"anobii italian books, rating >= {min_rating}",
        catalogue_before=anobii.n_items,
        catalogue_after=cleaned.n_items,
        events_before=anobii.n_ratings,
        events_after=cleaned.n_ratings,
    )
    return cleaned, report

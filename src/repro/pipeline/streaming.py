"""Streaming merge: the Section-3 pipeline over a sharded corpus.

:func:`merge_sharded_corpus` runs the exact pipeline of
:func:`repro.pipeline.merge.build_merged_dataset` — quarantine, cleaning,
genre model, catalogue match, readings union, activity filters — without
ever materialising the event tables. The catalogue-side stages are cheap
(O(books)) and reuse the in-memory helpers verbatim; the event-side
stages stream over the corpus shards in two passes:

1. **Accumulate.** Each shard is reduced to (a) a per-row survival mask
   through quarantine/cleaning/match, and (b) its *unique (user, book)
   pair counts*, merged into a running sorted accumulator. Everything the
   activity filters and the :class:`~repro.pipeline.merge.MergeReport`
   need — distinct users/books, per-book event counts, readings counts —
   derives from the pair accumulator, whose size is O(unique pairs), not
   O(events).
2. **Emit.** Shards are re-read and the rows surviving the activity
   filter are either assembled into the same in-memory
   :class:`~repro.datasets.MergedDataset` the materialised path builds
   (``materialise=True``, the equivalence-test mode) or written back out
   as merged readings shards (``output_dir=...``, the out-of-core mode,
   reloadable via :func:`load_merged_corpus`).

The contract — bit-identical tables and an identical ``MergeReport``
versus the in-memory path, for any worker count — is pinned by
``tests/pipeline/test_streaming_merge.py`` and documented in
``docs/determinism.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets.bct import KEPT_LANGUAGE, KEPT_MATERIALS
from repro.datasets.corpus import ShardedCorpus
from repro.datasets.merged import MergedDataset
from repro.datasets.models import READINGS_SCHEMA
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.parallel import WorkerPool
from repro.pipeline.cleaning import CleaningReport, QuarantineReport, _keep_first_by_key
from repro.pipeline.genres import build_genre_model
from repro.pipeline.merge import (
    MergeConfig,
    MergeReport,
    _genre_table,
    _match_catalogues,
    _merged_books,
)
from repro.resilience.artefacts import MANIFEST_NAME, write_manifest
from repro.tables import Table, read_csv, write_csv
from repro.tables.io import read_npz_columns, write_npz_columns

#: Manifest ``kind`` of a streamed merge output directory.
MERGED_CORPUS_KIND = "merged-corpus"

_SOURCE_NAMES = np.asarray(["bct", "anobii"], dtype=object)

#: Row-block size for the per-shard passes. Work inside a shard proceeds
#: in fixed blocks so transient temporaries (membership positions, pair
#: codes) are O(block), decoupling peak memory from the shard row count.
_PASS_CHUNK = 65_536


@dataclass(frozen=True)
class StreamingMergeResult:
    """What :func:`merge_sharded_corpus` produced.

    ``dataset`` is populated in ``materialise=True`` mode;
    ``output_dir`` in out-of-core mode. The ``report`` is always present
    and identical to the in-memory path's.
    """

    report: MergeReport
    dataset: MergedDataset | None = None
    output_dir: Path | None = None


def _membership(sorted_array: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Vectorised ``value in sorted_array`` over ``values``."""
    if len(sorted_array) == 0 or len(values) == 0:
        return np.zeros(len(values), dtype=bool)
    positions = np.searchsorted(sorted_array, values)
    np.minimum(positions, len(sorted_array) - 1, out=positions)
    return sorted_array[positions] == values


class _PairAccumulator:
    """Running (user code, book rank) pair counts, sorted by pair code.

    The streaming replacement for holding the readings table: both
    activity-filter floors (distinct books per user, events per book) and
    every report count derive from it, and its size is bounded by the
    number of *unique* pairs.
    """

    def __init__(self, n_matched_books: int) -> None:
        self.k = max(n_matched_books, 1)
        self.codes = np.empty(0, dtype=np.int64)
        self.counts = np.empty(0, dtype=np.int64)

    def encode(self, user_codes: np.ndarray, book_ranks: np.ndarray) -> np.ndarray:
        codes = user_codes.astype(np.int64)
        codes *= self.k
        codes += book_ranks
        return codes

    def add(self, pair_codes: np.ndarray) -> None:
        """Fold one shard's row-level pair codes into the accumulator.

        A sorted-merge, not a re-sort: ``self.codes`` is already sorted
        and ``np.unique`` sorts the shard's codes, so existing pairs are
        found with one binary search and only genuinely new codes are
        spliced in. Transient memory stays O(shard + accumulator) with
        small constants — re-uniquing the concatenation (sort copy,
        inverse, float64 bincount) tripled the peak and was what the
        4x-shard RSS regression test caught.
        """
        if len(pair_codes) == 0:
            return
        unique, counts = np.unique(pair_codes, return_counts=True)
        if len(self.codes) == 0:
            self.codes = unique
            self.counts = counts
            return
        positions = np.minimum(
            np.searchsorted(self.codes, unique), len(self.codes) - 1
        )
        exists = self.codes[positions] == unique
        # `unique` has no repeats, so these positions are distinct and the
        # fancy-indexed += is well-defined.
        self.counts[positions[exists]] += counts[exists]
        if exists.all():
            return
        fresh = ~exists
        insert_at = np.searchsorted(self.codes, unique[fresh])
        self.codes = np.insert(self.codes, insert_at, unique[fresh])
        self.counts = np.insert(self.counts, insert_at, counts[fresh])

    def users(self) -> np.ndarray:
        return self.codes // self.k

    def books(self) -> np.ndarray:
        return self.codes % self.k

    def release(self) -> None:
        """Drop the accumulated arrays once the active set is extracted.

        Pass 2 only needs :meth:`encode` (a function of ``k``) and the
        caller's ``active_codes`` slice; freeing the full code/count
        arrays here keeps the emit phase's peak inside the RSS budget.
        """
        self.codes = np.empty(0, dtype=np.int64)
        self.counts = np.empty(0, dtype=np.int64)


def _catalogue_dedup(
    table: Table, table_name: str, key_column: str, quarantine: QuarantineReport
) -> Table:
    """Quarantine duplicate catalogue rows, mirroring the in-memory pass."""
    keep = _keep_first_by_key(table[key_column].tolist())
    for i in np.flatnonzero(~keep):
        quarantine.add(table_name, int(i), f"duplicate {key_column}", table.row(int(i)))
    return table.filter(keep) if not keep.all() else table


def merge_sharded_corpus(
    corpus: ShardedCorpus,
    config: MergeConfig | None = None,
    *,
    materialise: bool = True,
    output_dir: str | Path | None = None,
    strict: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    n_jobs: int = 1,
    backend: str = "auto",
) -> StreamingMergeResult:
    """Run the merge pipeline over a sharded corpus without materialising it.

    Equivalent to ``build_merged_dataset(*corpus.materialise(), config)``
    — same merged tables (when ``materialise=True``), same
    :class:`MergeReport`, same metrics series — but peak memory is bounded
    by the catalogue plus a single shard, not the corpus
    (``tests/pipeline/test_streaming_merge.py``). With ``output_dir`` the
    merged readings are written back out as npz shards plus ``books.csv``
    / ``genres.csv`` under a checksum manifest instead of (or in addition
    to) being assembled in memory; reload with :func:`load_merged_corpus`.

    ``n_jobs``/``backend`` parallelise the same per-book stages as the
    in-memory path (genre-vote parsing, match keys) with order-stable
    reassembly, so the output is identical for any worker count.
    """
    config = config or MergeConfig()
    pool = WorkerPool(n_jobs=n_jobs, backend=backend)
    with pool, start_span(tracer, "pipeline.merge_streaming", n_jobs=pool.n_jobs):
        # ------------------------------------------------------------------
        # catalogue side: identical helpers, O(books) memory
        # ------------------------------------------------------------------
        bct_quarantine = QuarantineReport()
        anobii_quarantine = QuarantineReport()
        with start_span(tracer, "pipeline.quarantine") as span:
            books_cat = _catalogue_dedup(
                corpus.bct_books(), "bct.books", "book_id", bct_quarantine
            )
            items_cat = _catalogue_dedup(
                corpus.anobii_items(), "anobii.items", "item_id", anobii_quarantine
            )

        known_book_ids = np.sort(books_cat["book_id"])
        known_item_ids = np.sort(items_cat["item_id"])

        with start_span(tracer, "pipeline.cleaning"):
            books_keep = np.asarray(
                [
                    material in KEPT_MATERIALS and language == KEPT_LANGUAGE
                    for material, language in zip(
                        books_cat["material"], books_cat["language"]
                    )
                ],
                dtype=bool,
            )
            cleaned_books = books_cat.filter(books_keep)
            items_keep = np.asarray(
                [
                    bool(is_book) and language == KEPT_LANGUAGE
                    for is_book, language in zip(
                        items_cat["is_book"], items_cat["language"]
                    )
                ],
                dtype=bool,
            )
            cleaned_items = items_cat.filter(items_keep)
        kept_book_ids = np.sort(cleaned_books["book_id"])
        kept_item_ids = np.sort(cleaned_items["item_id"])

        with start_span(tracer, "pipeline.genres"):
            genre_model = build_genre_model(
                cleaned_items,
                max_book_share=config.genre_max_book_share,
                min_books=config.genre_min_books,
                min_affinity=config.genre_min_affinity,
                pool=pool,
            )

        with start_span(tracer, "pipeline.match"):
            item_of_book, unmatched_bct, unmatched_anobii = _match_catalogues(
                cleaned_books, cleaned_items, pool=pool
            )
            merged_books = _merged_books(cleaned_books, cleaned_items, item_of_book)
        matched_book_ids = np.sort(
            np.fromiter(item_of_book.keys(), dtype=np.int64, count=len(item_of_book))
        )
        # Same last-wins inversion the in-memory readings builder uses.
        book_of_item = {item: book for book, item in item_of_book.items()}
        matched_item_ids = np.fromiter(
            book_of_item.keys(), dtype=np.int64, count=len(book_of_item)
        )
        mapped_book_ids = np.fromiter(
            book_of_item.values(), dtype=np.int64, count=len(book_of_item)
        )
        item_order = np.argsort(matched_item_ids)
        matched_item_ids = matched_item_ids[item_order]
        mapped_book_ids = mapped_book_ids[item_order]

        # ------------------------------------------------------------------
        # event pass 1: quarantine + clean + match + pair accumulation
        # ------------------------------------------------------------------
        n_bct_users = len(corpus.bct_user_ids)
        pairs = _PairAccumulator(len(matched_book_ids))
        loan_keeps: list[np.ndarray] = []
        rating_keeps: list[np.ndarray] = []
        loans_after_q = loans_after_clean = 0
        ratings_after_q = ratings_after_clean = 0

        with start_span(tracer, "pipeline.readings") as span:
            offset = 0
            for shard in corpus.iter_loan_shards():
                keep, n_ok, n_clean = _loan_shard_pass(
                    corpus, shard, offset, config,
                    known_book_ids, kept_book_ids, matched_book_ids,
                    pairs, bct_quarantine,
                )
                loan_keeps.append(keep)
                loans_after_q += n_ok
                loans_after_clean += n_clean
                offset += len(keep)
            offset = 0
            for shard in corpus.iter_rating_shards():
                keep, n_ok, n_clean = _rating_shard_pass(
                    corpus, shard, offset, config,
                    known_item_ids, kept_item_ids,
                    matched_item_ids, mapped_book_ids, matched_book_ids,
                    n_bct_users, pairs, anobii_quarantine,
                )
                rating_keeps.append(keep)
                ratings_after_q += n_ok
                ratings_after_clean += n_clean
                offset += len(keep)
            span.set_attrs(readings=int(pairs.counts.sum()))

        quarantine = bct_quarantine.extend(anobii_quarantine)
        quarantine.raise_if(strict)
        if metrics is not None:
            counter = metrics.counter("pipeline.quarantined_rows")
            for (table, reason), count in sorted(quarantine.counts().items()):
                counter.labels(table=table, reason=reason).inc(count)

        bct_report = CleaningReport(
            step="bct italian monographs",
            catalogue_before=books_cat.num_rows,
            catalogue_after=cleaned_books.num_rows,
            events_before=loans_after_q,
            events_after=loans_after_clean,
        )
        anobii_report = CleaningReport(
            step=f"anobii italian books, rating >= {config.min_rating}",
            catalogue_before=items_cat.num_rows,
            catalogue_after=cleaned_items.num_rows,
            events_before=ratings_after_q,
            events_after=ratings_after_clean,
        )

        # ------------------------------------------------------------------
        # activity filters on the pair accumulator
        # ------------------------------------------------------------------
        pair_users = pairs.users()
        pair_books = pairs.books()
        readings_before = int(pairs.counts.sum())
        users_before = len(np.unique(pair_users))
        books_before = len(np.unique(pair_books))

        with start_span(tracer, "pipeline.activity_filter") as span:
            active = _filter_pairs(pair_users, pair_books, pairs, config)
            span.set_attrs(
                readings_before=readings_before,
                readings_after=int(pairs.counts[active].sum()),
            )

        readings_after = int(pairs.counts[active].sum())
        users_after = len(np.unique(pair_users[active]))
        kept_ranks = np.unique(pair_books[active])
        kept_books = {int(matched_book_ids[r]) for r in kept_ranks}
        books_table = merged_books.filter(
            np.asarray(
                [b in kept_books for b in merged_books["book_id"]], dtype=bool
            )
        )
        genres_table = _genre_table(genre_model, item_of_book, kept_books)
        active_codes = pairs.codes[active]
        # Everything pass 2 needs is now in `active_codes`; free the
        # accumulator and its derived views before the emit phase peaks.
        pairs.release()
        del pair_users, pair_books, active

        # ------------------------------------------------------------------
        # event pass 2: emit surviving rows
        # ------------------------------------------------------------------
        dataset: MergedDataset | None = None
        out_path: Path | None = None
        with start_span(tracer, "pipeline.emit") as span:
            if output_dir is not None:
                out_path = _write_merged_corpus(
                    corpus, Path(output_dir), config,
                    loan_keeps, rating_keeps, active_codes,
                    matched_item_ids, mapped_book_ids, matched_book_ids,
                    n_bct_users, pairs,
                    books_table, genres_table, readings_after,
                )
            if materialise:
                readings = _materialise_readings(
                    corpus, loan_keeps, rating_keeps, active_codes,
                    matched_item_ids, mapped_book_ids, matched_book_ids,
                    n_bct_users, pairs,
                )
                dataset = MergedDataset(
                    books=books_table, readings=readings, genres=genres_table
                )
                dataset.validate()
            span.set_attrs(readings=readings_after)

    if metrics is not None:
        metrics.gauge("pipeline.readings").set(float(readings_after))
        metrics.gauge("pipeline.books").set(float(books_table.num_rows))
    report = MergeReport(
        cleaning=(bct_report, anobii_report),
        matched_books=len(item_of_book),
        bct_only_books=unmatched_bct,
        anobii_only_books=unmatched_anobii,
        readings_before_filter=readings_before,
        readings_after_filter=readings_after,
        users_before_filter=users_before,
        users_after_filter=users_after,
        books_before_filter=books_before,
        books_after_filter=books_table.num_rows,
        genre_model=genre_model,
        quarantine=quarantine,
    )
    return StreamingMergeResult(report=report, dataset=dataset, output_dir=out_path)


def _loan_shard_pass(
    corpus: ShardedCorpus,
    shard: dict[str, np.ndarray],
    offset: int,
    config: MergeConfig,
    known_book_ids: np.ndarray,
    kept_book_ids: np.ndarray,
    matched_book_ids: np.ndarray,
    pairs: _PairAccumulator,
    quarantine: QuarantineReport,
) -> tuple[np.ndarray, int, int]:
    """Reduce one loan shard: quarantine, clean, match, accumulate pairs.

    Rows are processed in :data:`_PASS_CHUNK` blocks, and a block has at
    most ``n_books`` *distinct* book ids, so membership tests and rank
    lookups run on the unique values and broadcast back through
    ``return_inverse`` — transient temporaries are O(block), not
    O(shard), which is what keeps the pass inside the 4x-shard RSS
    budget the regression test enforces.
    """
    n_rows = len(shard["book_id"])
    keep = np.empty(n_rows, dtype=bool)
    n_ok = n_clean = 0
    for start in range(0, n_rows, _PASS_CHUNK):
        block = slice(start, min(start + _PASS_CHUNK, n_rows))
        book_ids = shard["book_id"][block]
        duration = shard["duration"][block]
        unique_books, inverse = np.unique(book_ids, return_inverse=True)
        valid_book = _membership(known_book_ids, unique_books)[inverse]
        ok = valid_book & (duration >= 0)
        for i in np.flatnonzero(~ok):
            row = start + int(i)
            reason = (
                "dangling book_id" if not valid_book[i] else "returned before borrowed"
            )
            quarantine.add(
                "bct.loans", offset + row, reason, _loan_context(corpus, shard, row)
            )
        cleaned = ok & _membership(kept_book_ids, unique_books)[inverse]
        keep_block = (
            cleaned
            & _membership(matched_book_ids, unique_books)[inverse]
            & (duration >= config.min_loan_days)
        )
        if keep_block.any():
            unique_ranks = np.searchsorted(matched_book_ids, unique_books)
            np.minimum(unique_ranks, len(matched_book_ids) - 1, out=unique_ranks)
            pairs.add(
                pairs.encode(
                    shard["user"][block][keep_block], unique_ranks[inverse[keep_block]]
                )
            )
        keep[block] = keep_block
        n_ok += int(ok.sum())
        n_clean += int(cleaned.sum())
    return keep, n_ok, n_clean


def _rating_shard_pass(
    corpus: ShardedCorpus,
    shard: dict[str, np.ndarray],
    offset: int,
    config: MergeConfig,
    known_item_ids: np.ndarray,
    kept_item_ids: np.ndarray,
    matched_item_ids: np.ndarray,
    mapped_book_ids: np.ndarray,
    matched_book_ids: np.ndarray,
    n_bct_users: int,
    pairs: _PairAccumulator,
    quarantine: QuarantineReport,
) -> tuple[np.ndarray, int, int]:
    """Reduce one rating shard: quarantine, clean, map items, accumulate.

    Same block + unique-values structure as :func:`_loan_shard_pass`;
    the item → merged-book mapping collapses to one lookup table over
    each block's distinct item ids.
    """
    n_rows = len(shard["item_id"])
    keep = np.empty(n_rows, dtype=bool)
    n_ok = n_clean = 0
    for start in range(0, n_rows, _PASS_CHUNK):
        block = slice(start, min(start + _PASS_CHUNK, n_rows))
        item_ids = shard["item_id"][block]
        rating = shard["rating"][block]
        unique_items, inverse = np.unique(item_ids, return_inverse=True)
        valid_item = _membership(known_item_ids, unique_items)[inverse]
        ok = valid_item & (rating >= 1) & (rating <= 5)
        for i in np.flatnonzero(~ok):
            row = start + int(i)
            reason = (
                "dangling item_id" if not valid_item[i] else "rating outside [1, 5]"
            )
            quarantine.add(
                "anobii.ratings",
                offset + row,
                reason,
                _rating_context(corpus, shard, row),
            )
        cleaned = (
            ok
            & _membership(kept_item_ids, unique_items)[inverse]
            & (rating >= config.min_rating)
        )
        keep_block = cleaned & _membership(matched_item_ids, unique_items)[inverse]
        if keep_block.any():
            positions = np.searchsorted(matched_item_ids, unique_items)
            np.minimum(positions, len(matched_item_ids) - 1, out=positions)
            unique_ranks = np.searchsorted(
                matched_book_ids, mapped_book_ids[positions]
            )
            user_codes = shard["user"][block][keep_block].astype(np.int64)
            user_codes += n_bct_users
            pairs.add(pairs.encode(user_codes, unique_ranks[inverse[keep_block]]))
        keep[block] = keep_block
        n_ok += int(ok.sum())
        n_clean += int(cleaned.sum())
    return keep, n_ok, n_clean


def _filter_pairs(
    pair_users: np.ndarray,
    pair_books: np.ndarray,
    pairs: _PairAccumulator,
    config: MergeConfig,
) -> np.ndarray:
    """The activity-filter fixpoint loop over unique pairs.

    Semantics mirror the in-memory ``_apply_activity_filters``: both
    floors are evaluated on the currently-active pairs and applied in one
    pass; ``iterate_activity_filter`` repeats until nothing drops.
    """
    n_users = int(pair_users.max()) + 1 if len(pair_users) else 0
    n_books = int(pair_books.max()) + 1 if len(pair_books) else 0
    active = np.ones(len(pairs.codes), dtype=bool)
    while True:
        user_degree = np.bincount(pair_users[active], minlength=n_users)
        book_events = np.bincount(
            pair_books[active], weights=pairs.counts[active], minlength=n_books
        ).astype(np.int64)
        keep_users = user_degree >= config.min_user_readings
        keep_books = book_events >= config.min_book_readings
        keep = active & keep_users[pair_users] & keep_books[pair_books]
        if np.array_equal(keep, active):
            return active
        active = keep
        if not config.iterate_activity_filter:
            return active


def _loan_context(
    corpus: ShardedCorpus, shard: dict[str, np.ndarray], i: int
) -> dict:
    loan_date = corpus.bct_epoch + np.timedelta64(int(shard["day"][i]), "D")
    return {
        "loan_id": int(shard["loan_id"][i]),
        "user_id": str(corpus.bct_user_ids[int(shard["user"][i])]),
        "book_id": int(shard["book_id"][i]),
        "loan_date": loan_date,
        "return_date": loan_date + np.timedelta64(int(shard["duration"][i]), "D"),
    }


def _rating_context(
    corpus: ShardedCorpus, shard: dict[str, np.ndarray], i: int
) -> dict:
    return {
        "rating_id": int(shard["rating_id"][i]),
        "user_id": str(corpus.anobii_user_ids[int(shard["user"][i])]),
        "item_id": int(shard["item_id"][i]),
        "rating": int(shard["rating"][i]),
        "rating_date": corpus.anobii_epoch + np.timedelta64(int(shard["day"][i]), "D"),
    }


def _final_row_masks(
    corpus: ShardedCorpus,
    loan_keeps: list[np.ndarray],
    rating_keeps: list[np.ndarray],
    active_codes: np.ndarray,
    matched_item_ids: np.ndarray,
    mapped_book_ids: np.ndarray,
    matched_book_ids: np.ndarray,
    n_bct_users: int,
    pairs: _PairAccumulator,
):
    """Yield ``(source, shard, final_mask, final_book_ids)`` per shard.

    ``final_mask`` selects rows that survived pass 1 *and* whose (user,
    book) pair is still active after the activity filter;
    ``final_book_ids`` holds the merged book id of exactly those rows
    (compact — never a full-shard scratch column). Shards are re-read
    with only the columns this pass emits, and the pair-code membership
    runs in :data:`_PASS_CHUNK` blocks, for the same O(block) transient
    bound as pass 1.
    """
    loan_columns = ("user", "book_id", "day")
    for shard, keep in zip(corpus.iter_loan_shards(loan_columns), loan_keeps):
        final = keep.copy()
        for start in range(0, len(keep), _PASS_CHUNK):
            block = slice(start, min(start + _PASS_CHUNK, len(keep)))
            kept = keep[block]
            if not kept.any():
                continue
            ranks = np.searchsorted(matched_book_ids, shard["book_id"][block][kept])
            codes = pairs.encode(shard["user"][block][kept], ranks)
            final[block][kept] = _membership(active_codes, codes)
        yield 0, shard, final, shard["book_id"][final]
    rating_columns = ("user", "item_id", "day")
    for shard, keep in zip(corpus.iter_rating_shards(rating_columns), rating_keeps):
        final = keep.copy()
        for start in range(0, len(keep), _PASS_CHUNK):
            block = slice(start, min(start + _PASS_CHUNK, len(keep)))
            kept = keep[block]
            if not kept.any():
                continue
            positions = np.searchsorted(
                matched_item_ids, shard["item_id"][block][kept]
            )
            books = mapped_book_ids[positions]
            ranks = np.searchsorted(matched_book_ids, books)
            user_codes = shard["user"][block][kept].astype(np.int64)
            user_codes += n_bct_users
            final[block][kept] = _membership(
                active_codes, pairs.encode(user_codes, ranks)
            )
        # Rows in `final` all matched in pass 1, so the positions are exact.
        positions = np.searchsorted(matched_item_ids, shard["item_id"][final])
        yield 1, shard, final, mapped_book_ids[positions]


def _materialise_readings(
    corpus: ShardedCorpus,
    loan_keeps: list[np.ndarray],
    rating_keeps: list[np.ndarray],
    active_codes: np.ndarray,
    matched_item_ids: np.ndarray,
    mapped_book_ids: np.ndarray,
    matched_book_ids: np.ndarray,
    n_bct_users: int,
    pairs: _PairAccumulator,
) -> Table:
    """Assemble the full readings table — bit-identical to the in-memory one."""
    user_parts, book_parts, date_parts, source_parts = [], [], [], []
    for source, shard, final, book_ids in _final_row_masks(
        corpus, loan_keeps, rating_keeps, active_codes,
        matched_item_ids, mapped_book_ids, matched_book_ids, n_bct_users, pairs,
    ):
        n = int(final.sum())
        if not n:
            continue
        if source == 0:
            user_parts.append(corpus.bct_user_ids[shard["user"][final]])
            epoch = corpus.bct_epoch
        else:
            user_parts.append(corpus.anobii_user_ids[shard["user"][final]])
            epoch = corpus.anobii_epoch
        book_parts.append(book_ids)
        date_parts.append(epoch + shard["day"][final].astype("timedelta64[D]"))
        source_parts.append(np.full(n, _SOURCE_NAMES[source], dtype=object))
    empty_dates = np.asarray([], dtype="datetime64[D]")
    return Table.from_columns(
        {
            "user_id": np.concatenate(user_parts)
            if user_parts
            else np.asarray([], dtype=object),
            "book_id": np.concatenate(book_parts)
            if book_parts
            else np.asarray([], dtype=np.int64),
            "read_date": np.concatenate(date_parts) if date_parts else empty_dates,
            "source": np.concatenate(source_parts)
            if source_parts
            else np.asarray([], dtype=object),
        },
        schema=READINGS_SCHEMA,
    )


def _write_merged_corpus(
    corpus: ShardedCorpus,
    out_dir: Path,
    config: MergeConfig,
    loan_keeps: list[np.ndarray],
    rating_keeps: list[np.ndarray],
    active_codes: np.ndarray,
    matched_item_ids: np.ndarray,
    mapped_book_ids: np.ndarray,
    matched_book_ids: np.ndarray,
    n_bct_users: int,
    pairs: _PairAccumulator,
    books_table: Table,
    genres_table: Table,
    readings_after: int,
) -> Path:
    """Write the merged readings as npz shards + csv catalogues + manifest."""
    out_dir.mkdir(parents=True, exist_ok=True)
    user_ids = np.concatenate(
        [
            np.asarray(corpus.bct_user_ids, dtype=str)
            if len(corpus.bct_user_ids)
            else np.asarray([], dtype="U1"),
            np.asarray(corpus.anobii_user_ids, dtype=str)
            if len(corpus.anobii_user_ids)
            else np.asarray([], dtype="U1"),
        ]
    )
    files: list[Path] = []
    users_path = out_dir / "users.npz"
    write_npz_columns(users_path, {"user_id": user_ids})
    files.append(users_path)

    epoch_days = {
        0: int(corpus.bct_epoch.astype("datetime64[D]").astype(np.int64)),
        1: int(corpus.anobii_epoch.astype("datetime64[D]").astype(np.int64)),
    }
    index = 0
    shard_rows: list[int] = []
    for source, shard, final, book_ids in _final_row_masks(
        corpus, loan_keeps, rating_keeps, active_codes,
        matched_item_ids, mapped_book_ids, matched_book_ids, n_bct_users, pairs,
    ):
        n = int(final.sum())
        users = shard["user"][final]
        if source == 1:
            users = users + np.int32(n_bct_users)
        path = out_dir / f"readings-{index:05d}.npz"
        write_npz_columns(
            path,
            {
                "user": users,
                "book_id": book_ids,
                "day": shard["day"][final].astype(np.int64) + epoch_days[source],
                "source": np.full(n, source, dtype=np.int8),
            },
        )
        files.append(path)
        shard_rows.append(n)
        index += 1

    books_path = out_dir / "books.csv"
    write_csv(books_table, books_path)
    files.append(books_path)
    genres_path = out_dir / "genres.csv"
    write_csv(genres_table, genres_path)
    files.append(genres_path)

    write_manifest(
        out_dir,
        files,
        kind=MERGED_CORPUS_KIND,
        extra={
            "merged": {
                "readings": readings_after,
                "shards": len(shard_rows),
                "shard_rows": shard_rows,
                "books": books_table.num_rows,
                "min_user_readings": config.min_user_readings,
                "min_book_readings": config.min_book_readings,
            }
        },
    )
    return out_dir


def load_merged_corpus(path: str | Path) -> MergedDataset:
    """Reload a merged corpus written by ``merge_sharded_corpus(output_dir=...)``.

    Rebuilds the same :class:`~repro.datasets.MergedDataset` the
    materialised path produces (validated), reading the readings shards in
    order.
    """
    path = Path(path)
    manifest = json.loads((path / MANIFEST_NAME).read_text(encoding="utf-8"))
    meta = manifest.get("merged", {})
    user_ids = np.asarray(
        read_npz_columns(path / "users.npz")["user_id"].tolist(), dtype=object
    )
    user_parts, book_parts, date_parts, source_parts = [], [], [], []
    for index in range(int(meta.get("shards", 0))):
        shard = read_npz_columns(path / f"readings-{index:05d}.npz")
        if not len(shard["user"]):
            continue
        user_parts.append(user_ids[shard["user"]])
        book_parts.append(shard["book_id"])
        date_parts.append(shard["day"].astype("datetime64[D]"))
        source_parts.append(_SOURCE_NAMES[shard["source"].astype(np.int64)])
    empty_dates = np.asarray([], dtype="datetime64[D]")
    readings = Table.from_columns(
        {
            "user_id": np.concatenate(user_parts)
            if user_parts
            else np.asarray([], dtype=object),
            "book_id": np.concatenate(book_parts)
            if book_parts
            else np.asarray([], dtype=np.int64),
            "read_date": np.concatenate(date_parts) if date_parts else empty_dates,
            "source": np.concatenate(source_parts)
            if source_parts
            else np.asarray([], dtype=object),
        },
        schema=READINGS_SCHEMA,
    )
    merged = MergedDataset(
        books=read_csv(path / "books.csv"),
        readings=readings,
        genres=read_csv(path / "genres.csv"),
    )
    merged.validate()
    return merged

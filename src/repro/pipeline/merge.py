"""Merging the BCT and Anobii sources into the training dataset.

This is the paper's final Section-3 step: align the two catalogues, combine
their attributes, build the unified *Readings* table (BCT loans + Anobii
positive ratings), and apply the activity filters. The output is a validated
:class:`repro.datasets.MergedDataset` plus a :class:`MergeReport` describing
what every stage kept and dropped.

Catalogue alignment runs on a normalised (title, author) key
(:func:`repro.datasets.models.match_key`) because the sources use
independent identifier spaces; only books present in *both* catalogues
survive, exactly as in the paper ("for each book present in both the BCT
and Anobii datasets").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.anobii import AnobiiDataset
from repro.datasets.bct import BCTDataset
from repro.datasets.merged import MergedDataset
from repro.datasets.models import (
    MERGED_BOOKS_SCHEMA,
    READINGS_SCHEMA,
    match_key,
)
from repro.errors import PipelineError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.parallel.pool import WorkerPool
from repro.pipeline.cleaning import (
    CleaningReport,
    QuarantineReport,
    clean_anobii,
    clean_bct,
    quarantine_anobii,
    quarantine_bct,
)
from repro.pipeline.genres import (
    DEFAULT_MAX_BOOK_SHARE,
    DEFAULT_MIN_AFFINITY,
    DEFAULT_MIN_BOOKS,
    GenreModel,
    build_genre_model,
)
from repro.tables import Table


@dataclass(frozen=True)
class MergeConfig:
    """Parameters of the merge step.

    The paper uses ``min_user_readings=10`` and ``min_book_readings=100`` on
    its 43 k-user dataset; the book floor must scale with dataset size, so
    experiment presets override it.
    """

    min_user_readings: int = 10
    min_book_readings: int = 100
    min_rating: int = 3
    min_loan_days: int = 0
    """Drop BCT loans returned within this many days (0 keeps all, the
    paper's behaviour). The paper's Section 4 proposes exactly this signal
    — "using the duration of the loan" — to filter out borrowed-but-not-
    appreciated books; the ``ablation_duration`` experiment quantifies it."""
    genre_max_book_share: float = DEFAULT_MAX_BOOK_SHARE
    genre_min_books: int = DEFAULT_MIN_BOOKS
    genre_min_affinity: float = DEFAULT_MIN_AFFINITY
    iterate_activity_filter: bool = False
    """When True, re-apply the user/book floors until a fixpoint; the paper
    applies them once, which is the default."""

    def __post_init__(self) -> None:
        if self.min_user_readings < 1 or self.min_book_readings < 1:
            raise PipelineError("activity floors must be >= 1")
        if not 1 <= self.min_rating <= 5:
            raise PipelineError(f"min_rating must be in [1, 5], got {self.min_rating}")
        if self.min_loan_days < 0:
            raise PipelineError(
                f"min_loan_days must be >= 0, got {self.min_loan_days}"
            )


@dataclass(frozen=True)
class MergeReport:
    """Counts describing every stage of the merge."""

    cleaning: tuple[CleaningReport, ...]
    matched_books: int
    bct_only_books: int
    anobii_only_books: int
    readings_before_filter: int
    readings_after_filter: int
    users_before_filter: int
    users_after_filter: int
    books_before_filter: int
    books_after_filter: int
    genre_model: GenreModel = field(repr=False)
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)
    """Malformed source rows set aside before cleaning (empty on clean
    dumps); see :class:`repro.pipeline.cleaning.QuarantineReport`."""

    def __str__(self) -> str:
        lines = [str(report) for report in self.cleaning]
        if self.quarantine:
            lines.append(str(self.quarantine))
        lines.append(
            f"catalogue match: {self.matched_books} shared books "
            f"({self.bct_only_books} BCT-only and {self.anobii_only_books} "
            f"Anobii-only dropped)"
        )
        lines.append(
            f"activity filter: users {self.users_before_filter} -> "
            f"{self.users_after_filter}, books {self.books_before_filter} -> "
            f"{self.books_after_filter}, readings "
            f"{self.readings_before_filter} -> {self.readings_after_filter}"
        )
        return "\n".join(lines)


def build_merged_dataset(
    bct: BCTDataset,
    anobii: AnobiiDataset,
    config: MergeConfig | None = None,
    strict: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    n_jobs: int = 1,
    backend: str = "auto",
) -> tuple[MergedDataset, MergeReport]:
    """Run the full merge pipeline; see the module docstring.

    Malformed source rows (dangling foreign keys, impossible dates, blank
    ids, duplicate catalogue entries) are quarantined — collected into
    ``report.quarantine`` with row context — before the paper's cleaning
    filters run. ``strict=True`` raises :class:`PipelineError` on the
    first malformed dump instead.

    ``tracer``/``metrics`` are optional observability hooks: each stage
    (quarantine, cleaning, genre entropy-merge, catalogue match, readings
    union, activity filter) runs in its own span under ``pipeline.merge``,
    and quarantined rows are counted per source table and reason in the
    ``pipeline.quarantined_rows`` counter.

    ``n_jobs``/``backend`` parallelise the per-book stages — genre-vote
    parsing and the normalised match-key computation — on a
    :class:`~repro.parallel.WorkerPool` with order-stable reassembly:
    the merged dataset and every ``MergeReport`` count are identical for
    any worker count (``tests/parallel/test_equivalence.py``).
    """
    config = config or MergeConfig()
    pool = WorkerPool(n_jobs=n_jobs, backend=backend)
    with pool, start_span(tracer, "pipeline.merge", n_jobs=pool.n_jobs):
        with start_span(tracer, "pipeline.quarantine") as span:
            bct, bct_quarantine = quarantine_bct(bct, strict=strict)
            anobii, anobii_quarantine = quarantine_anobii(anobii, strict=strict)
            quarantine = bct_quarantine.extend(anobii_quarantine)
            span.set_attrs(quarantined_rows=quarantine.n_rows)
        if metrics is not None:
            counter = metrics.counter("pipeline.quarantined_rows")
            for (table, reason), count in sorted(quarantine.counts().items()):
                counter.labels(table=table, reason=reason).inc(count)
        with start_span(tracer, "pipeline.cleaning") as span:
            cleaned_bct, bct_report = clean_bct(bct)
            cleaned_anobii, anobii_report = clean_anobii(
                anobii, config.min_rating
            )
            span.set_attrs(
                bct_loans=cleaned_bct.loans.num_rows,
                anobii_ratings=cleaned_anobii.ratings.num_rows,
            )

        with start_span(tracer, "pipeline.genres") as span:
            genre_model = build_genre_model(
                cleaned_anobii.items,
                max_book_share=config.genre_max_book_share,
                min_books=config.genre_min_books,
                min_affinity=config.genre_min_affinity,
                pool=pool,
            )
            span.set_attrs(
                canonical_genres=len(set(genre_model.canonical_of.values())),
                dropped_genres=len(genre_model.dropped_genres),
            )

        with start_span(tracer, "pipeline.match") as span:
            item_of_book, unmatched_bct, unmatched_anobii = _match_catalogues(
                cleaned_bct.books, cleaned_anobii.items, pool=pool
            )
            books = _merged_books(
                cleaned_bct.books, cleaned_anobii.items, item_of_book
            )
            span.set_attrs(
                matched_books=len(item_of_book),
                bct_only=unmatched_bct,
                anobii_only=unmatched_anobii,
            )
        with start_span(tracer, "pipeline.readings") as span:
            readings = _build_readings(
                cleaned_bct, cleaned_anobii, item_of_book, config.min_loan_days
            )
            span.set_attrs(readings=readings.num_rows)

        users_before = len(set(readings["user_id"].tolist()))
        books_before = len(set(readings["book_id"].tolist()))
        readings_before = readings.num_rows

        with start_span(tracer, "pipeline.activity_filter") as span:
            readings = _apply_activity_filters(readings, config)
            kept_books = set(readings["book_id"].tolist())
            books = books.filter(
                np.asarray(
                    [b in kept_books for b in books["book_id"]], dtype=bool
                )
            )
            genres_table = _genre_table(genre_model, item_of_book, kept_books)
            span.set_attrs(
                readings_before=readings_before,
                readings_after=readings.num_rows,
            )

        merged = MergedDataset(
            books=books, readings=readings, genres=genres_table
        )
        merged.validate()
    if metrics is not None:
        metrics.gauge("pipeline.readings").set(float(readings.num_rows))
        metrics.gauge("pipeline.books").set(float(books.num_rows))
    report = MergeReport(
        cleaning=(bct_report, anobii_report),
        matched_books=len(item_of_book),
        bct_only_books=unmatched_bct,
        anobii_only_books=unmatched_anobii,
        readings_before_filter=readings_before,
        readings_after_filter=readings.num_rows,
        users_before_filter=users_before,
        users_after_filter=len(set(readings["user_id"].tolist())),
        books_before_filter=books_before,
        books_after_filter=books.num_rows,
        genre_model=genre_model,
        quarantine=quarantine,
    )
    return merged, report


def _match_catalogues(
    bct_books: Table, anobii_items: Table, pool: WorkerPool | None = None
) -> tuple[dict[int, int], int, int]:
    """Align catalogues on the normalised (title, author) key.

    Returns ``{bct book_id: anobii item_id}`` for the intersection plus the
    counts of unmatched books on each side. Duplicate keys within a source
    keep the first occurrence (deterministic, mirrors a SQL anti-duplicate
    pass). Key normalisation is a pure per-row function, so with a ``pool``
    both catalogues' keys are computed in chunks across workers and zipped
    back in row order — the match is identical for any backend.
    """
    pool = pool or WorkerPool()
    anobii_keys = pool.starmap(
        match_key,
        [
            (str(title), str(author))
            for title, author in zip(
                anobii_items["title"], anobii_items["author"]
            )
        ],
    )
    anobii_by_key: dict[str, int] = {}
    for item_id, key in zip(anobii_items["item_id"], anobii_keys):
        anobii_by_key.setdefault(key, int(item_id))

    bct_keys = pool.starmap(
        match_key,
        [
            (str(title), str(author))
            for title, author in zip(bct_books["title"], bct_books["author"])
        ],
    )
    item_of_book: dict[int, int] = {}
    seen_keys: set[str] = set()
    for book_id, key in zip(bct_books["book_id"], bct_keys):
        if key in seen_keys:
            continue
        seen_keys.add(key)
        if key in anobii_by_key:
            item_of_book[int(book_id)] = anobii_by_key[key]
    unmatched_bct = bct_books.num_rows - len(item_of_book)
    matched_items = set(item_of_book.values())
    unmatched_anobii = anobii_items.num_rows - len(matched_items)
    return item_of_book, unmatched_bct, unmatched_anobii


def _merged_books(
    bct_books: Table, anobii_items: Table, item_of_book: dict[int, int]
) -> Table:
    """Combine attributes: author/title from BCT, plot/keywords from Anobii."""
    plot_of: dict[int, str] = {}
    keywords_of: dict[int, str] = {}
    for item_id, plot, keywords in zip(
        anobii_items["item_id"], anobii_items["plot"], anobii_items["keywords"]
    ):
        plot_of[int(item_id)] = str(plot)
        keywords_of[int(item_id)] = str(keywords)

    columns: dict[str, list] = {
        "book_id": [], "author": [], "title": [], "plot": [], "keywords": []
    }
    for book_id, title, author in zip(
        bct_books["book_id"], bct_books["title"], bct_books["author"]
    ):
        book_id = int(book_id)
        if book_id not in item_of_book:
            continue
        item_id = item_of_book[book_id]
        columns["book_id"].append(book_id)
        columns["author"].append(str(author))
        columns["title"].append(str(title))
        columns["plot"].append(plot_of.get(item_id, ""))
        columns["keywords"].append(keywords_of.get(item_id, ""))
    return Table.from_columns(columns, schema=MERGED_BOOKS_SCHEMA)


def _build_readings(
    bct: BCTDataset,
    anobii: AnobiiDataset,
    item_of_book: dict[int, int],
    min_loan_days: int = 0,
) -> Table:
    """Union the loans and positive ratings restricted to matched books.

    Loans returned in under ``min_loan_days`` are treated as negative
    implicit feedback (abandoned books) and dropped.
    """
    book_of_item = {item: book for book, item in item_of_book.items()}
    user_ids: list[str] = []
    book_ids: list[int] = []
    dates: list[np.datetime64] = []
    sources: list[str] = []
    for user_id, book_id, loan_date, return_date in zip(
        bct.loans["user_id"], bct.loans["book_id"],
        bct.loans["loan_date"], bct.loans["return_date"],
    ):
        if int(book_id) not in item_of_book:
            continue
        duration = int((return_date - loan_date) / np.timedelta64(1, "D"))
        if duration < min_loan_days:
            continue
        user_ids.append(str(user_id))
        book_ids.append(int(book_id))
        dates.append(loan_date)
        sources.append("bct")
    for user_id, item_id, rating_date in zip(
        anobii.ratings["user_id"],
        anobii.ratings["item_id"],
        anobii.ratings["rating_date"],
    ):
        if int(item_id) in book_of_item:
            user_ids.append(str(user_id))
            book_ids.append(book_of_item[int(item_id)])
            dates.append(rating_date)
            sources.append("anobii")
    return Table.from_columns(
        {
            "user_id": user_ids,
            "book_id": book_ids,
            "read_date": np.asarray(dates, dtype="datetime64[D]")
            if dates
            else np.asarray([], dtype="datetime64[D]"),
            "source": sources,
        },
        schema=READINGS_SCHEMA,
    )


def _apply_activity_filters(readings: Table, config: MergeConfig) -> Table:
    """Drop light users (< min distinct books) and cold books (< min events).

    Per the paper, both floors are evaluated on the unfiltered counts and
    applied in one pass; set ``iterate_activity_filter`` to re-apply until a
    fixpoint (stricter than the paper). Counting is fully vectorised
    (``np.unique`` factorisation + ``bincount``) so the filter costs
    O(n log n) array work, not a Python loop per event — the streaming
    path (:mod:`repro.pipeline.streaming`) applies the same floors to its
    pair accumulator without materialising the table at all.
    """
    while True:
        if not readings.num_rows:
            return readings
        unique_users, user_codes = np.unique(
            readings["user_id"], return_inverse=True
        )
        unique_books, book_codes = np.unique(
            readings["book_id"], return_inverse=True
        )
        n_books = len(unique_books)
        # Distinct (user, book) pairs give per-user distinct-book degrees;
        # raw book codes give per-book event counts (with multiplicity).
        pair_codes = np.unique(
            user_codes.astype(np.int64) * n_books + book_codes
        )
        user_degree = np.bincount(
            pair_codes // n_books, minlength=len(unique_users)
        )
        book_events = np.bincount(book_codes, minlength=n_books)
        keep_users = user_degree >= config.min_user_readings
        keep_books = book_events >= config.min_book_readings
        mask = keep_users[user_codes] & keep_books[book_codes]
        if mask.all():
            return readings
        readings = readings.filter(mask)
        if not config.iterate_activity_filter:
            return readings


def _genre_table(
    genre_model: GenreModel, item_of_book: dict[int, int], kept_books: set[int]
) -> Table:
    """Re-key the genre model from Anobii item ids to merged book ids."""
    book_of_item = {item: book for book, item in item_of_book.items()}
    rekeyed = {
        book_of_item[item_id]: genres
        for item_id, genres in genre_model.book_genres.items()
        if item_id in book_of_item and book_of_item[item_id] in kept_books
    }
    restricted = GenreModel(
        canonical_of=genre_model.canonical_of,
        book_genres=rekeyed,
        dropped_genres=genre_model.dropped_genres,
        merge_trace=genre_model.merge_trace,
    )
    return restricted.to_table()

"""Cleaning and aggregation of the crowd-voted Anobii genres.

The paper (Section 3) processes the 41 raw genres in three steps:

1. *Neglect* genres associated with almost all books (e.g. "Fiction and
   Literature") or with very few books.
2. *Aggregate* related genres, "considering the entropy value calculated
   using their occurrences"; "the aggregation is performed if it leads to
   the entropy reduction". We interpret the entropy as the total Shannon
   entropy of the per-book genre-vote distributions: merging two labels
   that co-occur on the same books concentrates those books' vote
   distributions (entropy strictly drops), while merging labels that never
   share a book changes nothing (no reduction, merge rejected). The merge
   is greedy: the pair with the highest co-occurrence affinity is merged
   while it reduces the vote entropy, stopping when no sufficiently affine
   pair remains.
3. Keep the *top 4* genres per book by votes, converting vote counts to
   probabilities that sum to one.

The result is a :class:`GenreModel`: a raw-to-canonical label mapping plus a
per-book probability distribution over canonical genres.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.models import parse_genre_votes
from repro.errors import PipelineError
from repro.parallel.pool import WorkerPool
from repro.tables import Table
from repro.datasets.models import BOOK_GENRES_SCHEMA

#: Drop genres voted on more than this share of books ("almost all books").
DEFAULT_MAX_BOOK_SHARE = 0.6

#: Drop genres voted on fewer than this many books ("very few books").
DEFAULT_MIN_BOOKS = 3

#: Merge two genres only when their co-occurrence affinity reaches this.
DEFAULT_MIN_AFFINITY = 0.5

#: Books keep at most this many genres (paper: "the top 4 genres").
TOP_GENRES_PER_BOOK = 4


@dataclass(frozen=True)
class GenreModel:
    """The cleaned genre model produced by :func:`build_genre_model`."""

    canonical_of: dict[str, str]
    """Raw genre label -> canonical (post-aggregation) label."""

    book_genres: dict[int, tuple[tuple[str, float], ...]]
    """Book id -> up to four (canonical genre, probability) pairs, sorted by
    decreasing probability; probabilities sum to one."""

    dropped_genres: tuple[str, ...] = ()
    """Raw labels removed by the ubiquitous/rare filters."""

    merge_trace: tuple[tuple[str, str], ...] = field(default=(), repr=False)
    """(absorbed label, canonical label) pairs, in merge order."""

    @property
    def canonical_genres(self) -> tuple[str, ...]:
        """All canonical genre labels, sorted."""
        return tuple(sorted(set(self.canonical_of.values())))

    def to_table(self) -> Table:
        """Materialise as the merged dataset's ``genres`` table."""
        books: list[int] = []
        genres: list[str] = []
        probabilities: list[float] = []
        for book_id in sorted(self.book_genres):
            for genre, probability in self.book_genres[book_id]:
                books.append(book_id)
                genres.append(genre)
                probabilities.append(probability)
        return Table.from_columns(
            {"book_id": books, "genre": genres, "probability": probabilities},
            schema=BOOK_GENRES_SCHEMA,
        )


def entropy(counts: Counter | dict[str, int]) -> float:
    """Shannon entropy (nats) of an occurrence distribution."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        if count > 0:
            p = count / total
            result -= p * math.log(p)
    return result


def normalized_entropy(counts: Counter | dict[str, int]) -> float:
    """Entropy divided by its maximum ``ln(K)``: 1 means perfectly balanced."""
    k = sum(1 for count in counts.values() if count > 0)
    if k <= 1:
        return 0.0
    return entropy(counts) / math.log(k)


def extract_genre_votes(
    items: Table, pool: WorkerPool | None = None
) -> dict[int, dict[str, int]]:
    """Parse the ``genre_votes`` column into ``{item_id: {genre: votes}}``.

    Parsing is a pure per-row function, so with a ``pool`` the rows are
    chunked across workers and reassembled in order — the result dict is
    identical to the serial parse for any backend.
    """
    pool = pool or WorkerPool()
    serialized = [str(value) for value in items["genre_votes"]]
    parsed = pool.map(parse_genre_votes, serialized)
    return {
        int(item_id): votes
        for item_id, votes in zip(items["item_id"], parsed)
    }


def drop_extreme_genres(
    votes_by_book: dict[int, dict[str, int]],
    max_book_share: float = DEFAULT_MAX_BOOK_SHARE,
    min_books: int = DEFAULT_MIN_BOOKS,
) -> tuple[dict[int, dict[str, int]], tuple[str, ...]]:
    """Remove ubiquitous and rare genre labels from every book's votes."""
    if not 0 < max_book_share <= 1:
        raise PipelineError(f"max_book_share must be in (0, 1], got {max_book_share}")
    n_books = len(votes_by_book)
    occurrences = Counter(
        genre for votes in votes_by_book.values() for genre in votes
    )
    dropped = {
        genre
        for genre, count in occurrences.items()
        if count > max_book_share * n_books or count < min_books
    }
    cleaned = {
        book: {g: v for g, v in votes.items() if g not in dropped}
        for book, votes in votes_by_book.items()
    }
    return cleaned, tuple(sorted(dropped))


def aggregate_genres(
    votes_by_book: dict[int, dict[str, int]],
    min_affinity: float = DEFAULT_MIN_AFFINITY,
) -> tuple[dict[str, str], tuple[tuple[str, str], ...]]:
    """Greedily merge co-occurring genres while entropy decreases.

    Affinity of a pair is ``cooc(a, b) / min(occ(a), occ(b))`` — 1.0 when the
    rarer label never appears without the other. The highest-affinity pair
    at or above ``min_affinity`` is merged into the more frequent label
    when the merge reduces the total per-book vote entropy (see the module
    docstring); the process repeats until no eligible pair remains.

    Returns the raw -> canonical mapping and the ordered merge trace.
    """
    # Working copy of each book's votes under the current merged labels.
    merged_votes: dict[int, Counter] = {
        book: Counter(votes) for book, votes in votes_by_book.items()
    }
    occurrences: Counter = Counter()
    cooccurrence: Counter = Counter()
    books_with: dict[str, set[int]] = {}
    for book, votes in merged_votes.items():
        genres = sorted(votes)
        occurrences.update(genres)
        for genre in genres:
            books_with.setdefault(genre, set()).add(book)
        for i, a in enumerate(genres):
            for b in genres[i + 1:]:
                cooccurrence[(a, b)] += 1

    canonical = {genre: genre for genre in occurrences}
    trace: list[tuple[str, str]] = []
    while True:
        best_pair = None
        best_affinity = min_affinity
        for (a, b), together in cooccurrence.items():
            if occurrences[a] == 0 or occurrences[b] == 0:
                continue
            affinity = together / min(occurrences[a], occurrences[b])
            if affinity > best_affinity or (
                best_pair is None and affinity == best_affinity
            ):
                best_pair = (a, b)
                best_affinity = affinity
        if best_pair is None:
            break
        a, b = best_pair
        # The more frequent label represents the merged family; frequency
        # ties break alphabetically so labels are stable across runs.
        if (occurrences[a], b) >= (occurrences[b], a):
            keep, absorb = a, b
        else:
            keep, absorb = b, a
        shared = books_with.get(a, set()) & books_with.get(b, set())
        if _vote_entropy_delta(merged_votes, shared, keep, absorb) >= 0.0:
            # Paper Section 3: "the aggregation is performed if it leads to
            # the entropy reduction" — here, of the books' genre-vote
            # distributions. Labels that truly co-occur always reduce it.
            cooccurrence[best_pair] = 0
            continue
        trace.append((absorb, keep))
        for raw, target in canonical.items():
            if target == absorb:
                canonical[raw] = keep
        # Apply the merge to every book carrying the absorbed label.
        for book in books_with.get(absorb, set()):
            votes = merged_votes[book]
            votes[keep] += votes.pop(absorb)
        books_with.setdefault(keep, set()).update(books_with.pop(absorb, set()))
        occurrences[keep] = len(books_with[keep])
        occurrences[absorb] = 0
        new_cooccurrence: Counter = Counter()
        for (x, y), together in cooccurrence.items():
            x = keep if x == absorb else x
            y = keep if y == absorb else y
            if x == y:
                continue
            pair = (x, y) if x < y else (y, x)
            new_cooccurrence[pair] = max(new_cooccurrence[pair], together)
        cooccurrence = new_cooccurrence
    return canonical, tuple(trace)


def _vote_entropy_delta(
    merged_votes: dict[int, Counter],
    shared_books: set[int],
    keep: str,
    absorb: str,
) -> float:
    """Change in total per-book vote entropy if ``absorb`` joins ``keep``.

    Only books carrying *both* labels change their vote distribution, so
    the delta is computed over those; it is strictly negative whenever the
    pair genuinely co-occurs and zero when it never does.
    """
    delta = 0.0
    for book in shared_books:
        votes = merged_votes[book]
        before = entropy(votes)
        merged = Counter(votes)
        merged[keep] += merged.pop(absorb)
        delta += entropy(merged) - before
    return delta


def top_genres(
    votes_by_book: dict[int, dict[str, int]],
    canonical_of: dict[str, str],
    top_k: int = TOP_GENRES_PER_BOOK,
) -> dict[int, tuple[tuple[str, float], ...]]:
    """Keep each book's ``top_k`` canonical genres as a probability vector."""
    if top_k < 1:
        raise PipelineError(f"top_k must be >= 1, got {top_k}")
    result: dict[int, tuple[tuple[str, float], ...]] = {}
    for book, votes in votes_by_book.items():
        merged: Counter = Counter()
        for raw, count in votes.items():
            if raw in canonical_of:
                merged[canonical_of[raw]] += count
        if not merged:
            continue
        best = merged.most_common(top_k)
        total = sum(count for _, count in best)
        result[book] = tuple(
            (genre, count / total) for genre, count in best
        )
    return result


def build_genre_model(
    items: Table,
    max_book_share: float = DEFAULT_MAX_BOOK_SHARE,
    min_books: int = DEFAULT_MIN_BOOKS,
    min_affinity: float = DEFAULT_MIN_AFFINITY,
    top_k: int = TOP_GENRES_PER_BOOK,
    pool: WorkerPool | None = None,
) -> GenreModel:
    """Run the full genre pipeline on an Anobii items table.

    ``pool`` parallelises the per-book vote parsing (the other stages
    are global reductions and stay in-process); the resulting model is
    identical for any pool configuration.
    """
    raw_votes = extract_genre_votes(items, pool=pool)
    cleaned, dropped = drop_extreme_genres(raw_votes, max_book_share, min_books)
    canonical, trace = aggregate_genres(cleaned, min_affinity)
    book_genres = top_genres(cleaned, canonical, top_k)
    return GenreModel(
        canonical_of=canonical,
        book_genres=book_genres,
        dropped_genres=dropped,
        merge_trace=trace,
    )

"""Bench for Table 1: KPI evaluation of all five systems at k = 20.

Regenerates the table and measures the evaluation kernel (full-ranking
scoring of every BCT test user for the fitted BPR model).
"""

from repro.eval.evaluator import evaluate_model
from repro.experiments import table1


def test_table1(benchmark, context, fitted_bpr):
    result = table1.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    rows = result.rows
    floor = max(rows["Random Items"].urr, rows["Most Read Items"].urr)
    assert rows["BPR"].urr > floor
    assert rows["Closest Items"].urr > floor
    assert rows["BPR (BCT only)"].urr < rows["BPR"].urr

    benchmark(
        evaluate_model, fitted_bpr, context.split, ks=(context.config.k,)
    )

"""Bench for Fig. 3: KPIs versus the number of recommended books k.

The kernel measured is the multi-k evaluation pass: one scoring + ranking
sweep reads off URR/NRR/P/R for every k simultaneously.
"""

from repro.eval.evaluator import evaluate_model
from repro.experiments import fig3


def test_fig3(benchmark, context, fitted_bpr):
    result = fig3.run(context, ks=(1, 2, 5, 10, 15, 20, 30, 40, 50))
    benchmark.extra_info["series"] = result.render()
    print("\n" + result.render())

    for model in ("Random Items", "Closest Items", "BPR"):
        urr = result.metric_series(model, "urr")
        assert urr == sorted(urr), f"URR must grow with k for {model}"
        recall = result.metric_series(model, "recall")
        assert recall == sorted(recall)
    bpr_p = result.metric_series("BPR", "precision")
    assert bpr_p[-1] < bpr_p[0], "precision must fall with k"

    benchmark(
        evaluate_model, fitted_bpr, context.split,
        ks=(1, 2, 5, 10, 15, 20, 30, 40, 50),
    )

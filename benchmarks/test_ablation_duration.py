"""Design-choice ablation bench: the loan-duration filter.

The paper's future-work feature ("using the duration of the loan")
implemented end to end: loans returned within days are treated as
abandoned and dropped before the merge. The bench regenerates the
comparison and measures the filtered merge kernel.
"""

from dataclasses import replace

from repro.experiments import duration_ablation
from repro.pipeline.merge import build_merged_dataset


def test_duration_ablation(benchmark, context):
    result = duration_ablation.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    # The synthetic world abandons a small but real share of loans.
    assert 0.01 < result.loans_removed_share < 0.35
    # Filtering label noise must not collapse either model.
    for name, report in result.filtered.items():
        assert report.urr > 0.7 * result.unfiltered[name].urr

    config = replace(context.config.merge, min_loan_days=7)
    sources = context.sources

    def filtered_merge():
        return build_merged_dataset(sources.bct, sources.anobii, config)

    benchmark.pedantic(filtered_merge, rounds=3, iterations=1)

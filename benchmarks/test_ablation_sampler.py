"""Design-choice ablation bench: WARP versus uniform BPR negative sampling.

The paper adopts WARP (Weston et al. 2011) without ablating it; this bench
regenerates the comparison table and measures the cost of each sampler's
training epoch.
"""

from dataclasses import replace

from repro.core.bpr import BPR
from repro.experiments import ablations


def test_sampler_ablation(benchmark, context):
    result = ablations.run_sampler_ablation(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    assert set(result.rows) == {"warp (paper)", "uniform"}
    # Both samplers must be far above random-level URR at this scale.
    for report in result.rows.values():
        assert report.urr > 0.25

    warp_config = replace(context.config.bpr, epochs=1, sampler="warp")

    def one_warp_epoch():
        return BPR(warp_config).fit(context.split.train, context.merged)

    benchmark.pedantic(one_warp_epoch, rounds=2, iterations=1)


def test_uniform_epoch(benchmark, context):
    uniform_config = replace(
        context.config.bpr, epochs=1, sampler="uniform"
    )

    def one_uniform_epoch():
        return BPR(uniform_config).fit(context.split.train, context.merged)

    benchmark.pedantic(one_uniform_epoch, rounds=2, iterations=1)

"""Shared state for the benchmark suite.

Benchmarks run at the ``small`` experiment scale so the whole suite
finishes in about a minute; the ``default``-scale numbers recorded in
EXPERIMENTS.md come from ``python -m repro --scale default suite``.

The context (dataset + split + fitted models) is built once per session;
each bench file then measures its experiment's computational kernel and, as
a side effect, prints the regenerated table/series with ``--benchmark-only
-s`` (the render also lands in the benchmark's ``extra_info``).
"""

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments import ExperimentContext  # noqa: E402
from repro.experiments.config import config_for_scale  # noqa: E402


@pytest.fixture(scope="session")
def context():
    """The small-scale experiment context, shared by every bench."""
    return ExperimentContext(config_for_scale("small"))


@pytest.fixture(scope="session")
def fitted_bpr(context):
    return context.model("bpr")


@pytest.fixture(scope="session")
def fitted_closest(context):
    return context.model("closest")

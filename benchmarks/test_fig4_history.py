"""Bench for Fig. 4: NRR by training-history size."""

from repro.eval.groups import evaluate_by_history_size
from repro.experiments import fig4


def test_fig4(benchmark, context):
    result = fig4.run(context)
    benchmark.extra_info["series"] = result.render()
    print("\n" + result.render())

    cb = result.groups["Closest Items"].nrr
    bpr = result.groups["BPR"].nrr
    assert cb[-1] > cb[0], "CB must gain with history"
    # The paper's headline: CB's relative growth exceeds BPR's.
    assert cb[-1] / max(cb[0], 1e-9) > bpr[-1] / max(bpr[0], 1e-9)

    evaluation = context.evaluation("bpr")
    benchmark(
        evaluate_by_history_size, evaluation, context.config.k, None, 4
    )

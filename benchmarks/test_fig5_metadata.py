"""Bench for Fig. 5: KPIs per metadata-summary composition.

The kernel measured is one full content-based build: summary construction,
embedder fit, catalogue encoding, similarity matrix (the per-composition
cost of the paper's ablation).
"""

from repro.core.closest_items import ClosestItems
from repro.experiments import fig5


def test_fig5(benchmark, context):
    result = fig5.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    title = result.rows[("title",)]
    combo = result.rows[("author", "genres")]
    assert combo.urr > 2 * title.urr, "author+genres must crush title-only"
    best = result.best()
    assert combo.urr >= result.rows[best].urr * 0.85

    def build_cb():
        model = ClosestItems(fields=("author", "genres"))
        model.fit(context.split.train, context.merged)
        return model

    benchmark(build_cb)

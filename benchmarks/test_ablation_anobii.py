"""Design-choice ablation bench: what the Anobii integration contributes.

Separates the paper's two claimed benefits — extra readings for CF and
richer metadata for CB — and measures the BCT-only training kernel.
"""

from dataclasses import replace

from repro.core.bpr import BPR
from repro.experiments import ablations


def test_anobii_ablation(benchmark, context):
    result = ablations.run_anobii_ablation(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    rows = result.rows
    assert (
        rows["BPR, merged readings"].urr > rows["BPR, BCT readings only"].urr
    ), "extra Anobii readings must help CF"
    assert (
        rows["Closest, anobii metadata (author+genres)"].urr
        >= rows["Closest, BCT metadata only (title+author)"].urr
    ), "Anobii metadata must help CB"

    dataset, split = context.bct_only
    config = replace(context.config.bpr, epochs=2)

    def train_bct_only():
        return BPR(config).fit(split.train, dataset)

    benchmark.pedantic(train_bct_only, rounds=2, iterations=1)

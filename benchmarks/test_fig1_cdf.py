"""Bench for Fig. 1: CDFs of readings per user and per book."""

from repro.experiments import fig1
from repro.pipeline import stats


def test_fig1(benchmark, context):
    result = fig1.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    assert result.per_user.min() >= 1
    assert result.per_book.max() > result.per_book.min()

    benchmark(stats.readings_cdfs, context.merged)

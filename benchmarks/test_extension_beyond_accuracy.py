"""Extension bench: beyond-accuracy metrics (the paper's future work).

Regenerates the diversity/novelty/serendipity/coverage table and measures
the metric-computation kernel for the fitted BPR model.
"""

from repro.eval.beyond_accuracy import evaluate_beyond_accuracy
from repro.experiments import extensions


def test_beyond_accuracy(benchmark, context, fitted_bpr, fitted_closest):
    result = extensions.run_beyond_accuracy(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    rows = result.rows
    assert rows["BPR"].coverage > rows["Most Read Items"].coverage
    assert rows["BPR"].novelty > rows["Most Read Items"].novelty

    benchmark(
        evaluate_beyond_accuracy,
        fitted_bpr, context.split, fitted_closest.similarity,
        context.config.k,
    )

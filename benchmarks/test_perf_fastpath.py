"""Bench for the vectorised scoring fast paths.

Kernels: CSR-scatter masking, batched top-k, rank-only (counting)
evaluation, the truncated sparse similarity build, and cached serving —
each asserted equivalent to its reference path while being timed. The
end-to-end JSON artefact comes from ``python -m repro bench``
(:func:`repro.perf.fastpath.run_fastpath_bench`); this suite tracks the
kernels under pytest-benchmark.
"""

import numpy as np

from repro.app.service import RecommendationRequest, RecommendationService
from repro.core.closest_items import ClosestItems
from repro.eval.evaluator import evaluate_model
from repro.perf.fastpath import FastpathBenchConfig, run_fastpath_bench


def _eval_users(context):
    return np.asarray(sorted(context.split.test_items), dtype=np.int64)


def test_masking_fast_path(benchmark, context, fitted_bpr):
    users = _eval_users(context)
    fast = benchmark(fitted_bpr.masked_scores, users)
    assert np.array_equal(fast, fitted_bpr.masked_scores_reference(users))


def test_batch_topk_fast_path(benchmark, context, fitted_bpr):
    users = _eval_users(context)
    k = context.config.k
    fast = benchmark(fitted_bpr.recommend_batch, users, k)
    reference = fitted_bpr.recommend_batch_reference(users, k)
    assert all(np.array_equal(f, r) for f, r in zip(fast, reference))


def test_rank_only_evaluation(benchmark, context, fitted_bpr):
    result = benchmark(
        evaluate_model, fitted_bpr, context.split, ks=(context.config.k,),
        rank_method="count",
    )
    reference = evaluate_model(
        fitted_bpr, context.split, ks=(context.config.k,),
        rank_method="argsort",
    )
    assert result.kpis == reference.kpis


def test_truncated_similarity_memory(benchmark, context, fitted_closest):
    def fit_sparse():
        model = ClosestItems(
            fields=("author", "genres"), top_n_neighbors=20, block_size=256
        )
        return model.fit(context.split.train, context.merged)

    sparse_model = benchmark.pedantic(fit_sparse, rounds=2, iterations=1)
    assert sparse_model.similarity_nbytes() < fitted_closest.similarity_nbytes()


def test_cached_serving(benchmark, context, fitted_bpr):
    service = RecommendationService(
        fitted_bpr, context.split.train, context.merged
    )
    user_id = str(context.split.train.users.id_of(0))
    request = RecommendationRequest(user_id=user_id, k=context.config.k)
    cold = service.recommend(request)
    warm = benchmark(service.recommend, request)
    assert [b.book_id for b in warm] == [b.book_id for b in cold]
    assert service.stats.cache_hits >= 1


def test_fastpath_report(tmp_path):
    """The JSON artefact pipeline end to end, at smoke scale."""
    config = FastpathBenchConfig(
        n_books=400, n_authors=150, n_bct_users=80, n_anobii_users=300,
        repeats=1, serve_requests=40, serve_users=10,
    )
    out = tmp_path / "BENCH_fastpath.json"
    report = run_fastpath_bench(config, output_path=out)
    assert out.exists()
    for section in ("masking", "evaluation", "similarity", "serving"):
        assert section in report
    assert report["evaluation"]["speedup"] > 0
    assert (
        report["similarity"]["truncated_sparse_nbytes"]
        < report["similarity"]["dense_nbytes"]
    )
    assert report["serving"]["cache_hits"] > 0

"""Bench for Table 2: training and recommendation wall-clock time.

Two kernels: one BPR training run (the paper's 30.55 s entry, at bench
scale) and single-user recommendation latency (the paper's 0.04-0.05 s
entries).
"""

from dataclasses import replace

import numpy as np

from repro.core.bpr import BPR
from repro.experiments import table2


def test_table2_report(benchmark, context):
    result = table2.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    train_s, rec_s = result.rows["BPR"]
    assert train_s is not None and train_s > 0
    assert rec_s < 1.0, "a recommendation request must be interactive"

    user = int(np.asarray(sorted(context.split.test_items))[0])
    model = context.model("bpr")
    benchmark(model.recommend, user, context.config.k)


def test_bpr_training_time(benchmark, context):
    """The Table-2 training entry as its own benchmark (fewer rounds)."""
    config = replace(context.config.bpr, epochs=2)

    def train():
        return BPR(config).fit(context.split.train, context.merged)

    benchmark.pedantic(train, rounds=2, iterations=1)

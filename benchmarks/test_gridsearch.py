"""Bench for the BPR hyper-parameter grid search (Section 6 ¶1).

The kernel measured is one grid cell: fit BPR with a candidate
configuration and score URR on the BCT validation holdout.
"""

from dataclasses import replace

from repro.core.bpr import BPR
from repro.eval.evaluator import fit_and_evaluate
from repro.experiments import gridsearch


def test_gridsearch(benchmark, context):
    result = gridsearch.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    best = result.grid.best
    assert best.val_urr == max(p.val_urr for p in result.grid.points)
    # The paper's winning factor count: 20 must be at least competitive
    # with the small grid's winner on validation URR.
    by_factors = {}
    for point in result.grid.points:
        by_factors.setdefault(point.n_factors, []).append(point.val_urr)
    assert max(by_factors[20]) >= 0.8 * best.val_urr

    config = replace(
        context.config.bpr, n_factors=best.n_factors,
        learning_rate=best.learning_rate, epochs=2,
    )

    def one_cell():
        return fit_and_evaluate(
            BPR(config), context.split, context.merged,
            ks=(context.config.k,), holdout="val",
        )

    benchmark.pedantic(one_cell, rounds=2, iterations=1)

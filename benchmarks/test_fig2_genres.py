"""Bench for Fig. 2: genre shares of readings (and dominance statistic)."""

import pytest

from repro.experiments import fig2
from repro.pipeline import stats


def test_fig2(benchmark, context):
    result = fig2.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    assert sum(result.shares.values()) == pytest.approx(1.0)
    ordered = result.sorted_shares()
    assert ordered[0][1] > 0.25  # the Comics family leads

    benchmark(stats.genre_reading_shares, context.merged)

"""Design-choice ablation bench: TF-IDF weighting in the SBERT substitute.

Regenerates the weighted-vs-unweighted comparison and measures the
catalogue encoding kernel (fit + encode every metadata summary).
"""

from repro.experiments import ablations
from repro.text.embedder import HashedTfidfEmbedder
from repro.text.summary import MetadataSummaryBuilder


def test_embedder_ablation(benchmark, context):
    result = ablations.run_embedder_ablation(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    assert result.rows["hashed tf-idf (default)"].urr > 0

    summaries = list(
        MetadataSummaryBuilder(("author", "genres"))
        .build_all(context.merged)
        .values()
    )

    def encode_catalogue():
        embedder = HashedTfidfEmbedder()
        embedder.fit(summaries)
        return embedder.encode(summaries)

    benchmark(encode_catalogue)

"""Design-choice ablation bench: temporal vs random per-user splitting.

Validates that Table 1's Most Read < Random inversion is a *temporal*
phenomenon (bestsellers are consumed early, so they sit in train under the
paper protocol but leak into random holdouts), and measures the split
kernel itself.
"""

from repro.eval.split import SplitConfig, split_readings
from repro.experiments import split_ablation


def test_split_ablation(benchmark, context):
    result = split_ablation.run(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    # Under the random split the popularity baseline jumps well above its
    # temporal-split level ...
    assert (
        result.random_order["Most Read Items"].urr
        > 1.4 * result.temporal["Most Read Items"].urr
    )
    # ... while the personalised ranking (BPR above CB above baselines)
    # survives either protocol.
    for split_rows in (result.temporal, result.random_order):
        assert split_rows["BPR"].urr > split_rows["Most Read Items"].urr

    benchmark(split_readings, context.merged, SplitConfig(order="time"))

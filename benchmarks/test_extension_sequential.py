"""Extension bench: the sequential Markov recommender (paper future work).

Regenerates the comparison table and measures the chain's training kernel
(transition counting + normalisation over all reading sequences).
"""

from repro.core.sequential import SequentialMarkov
from repro.experiments import extensions


def test_sequential_extension(benchmark, context):
    result = extensions.run_sequential(context)
    benchmark.extra_info["table"] = result.render()
    print("\n" + result.render())

    rows = result.rows
    # The chain must be a credible system: same league as the CB model.
    assert rows["Sequential Markov"].urr > 0.5 * rows["Closest Items"].urr

    def train_chain():
        return SequentialMarkov().fit(context.split.train, context.merged)

    benchmark(train_chain)
